//! Deterministic single-threaded runner for the distributed streaming model.
//!
//! [`Cluster`] owns `k` site state machines and one coordinator. Feeding an
//! item to a site runs all communication it triggers — including iterative
//! coordinator-initiated rounds such as polls and broadcasts — to
//! quiescence, metering every message hop. This matches the paper's model
//! where "communication is instant" and all exchanges finish before the
//! next item arrives.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::error::SimError;
use crate::meter::MessageMeter;
use crate::proto::{Coordinator, Down, MessageSize, Outbox, Site, SiteId};
use dtrack_trace::{
    merge_snapshots, SiteTracer, TraceConfig, TraceEvent, TraceEventKind, TraceLane, TraceShared,
};

/// Default per-arrival message fuse. A healthy protocol exchanges O(k + 1/ε)
/// messages per arrival in the worst case; hitting the fuse indicates a
/// livelock bug rather than a legitimately long exchange.
pub const DEFAULT_FUSE: u64 = 10_000_000;

/// Deterministic in-process cluster of `k` sites plus a coordinator.
#[derive(Debug)]
pub struct Cluster<S, C>
where
    S: Site,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    sites: Vec<S>,
    coordinator: C,
    meter: MessageMeter,
    fuse: u64,
    items_fed: u64,
    /// Administrative fault-injection mask: a `true` entry marks a site
    /// killed by [`Cluster::kill_site`]. Feeds to it error, downstream
    /// messages to it are dropped unmetered (the coordinator "sends" into
    /// the partition and nothing arrives), its state is frozen.
    dead: Vec<bool>,
    /// Shared trace state (enable flag, capacity, logical clock) plus one
    /// per-site tracer and one coordinator-lane tracer. Tracing is off by
    /// default: each would-be event then costs one relaxed load + branch.
    trace_shared: Arc<TraceShared>,
    tracers: Vec<SiteTracer>,
    coord_tracer: SiteTracer,
    // Reused buffers to keep the hot path allocation-free.
    up_queue: VecDeque<(SiteId, S::Up)>,
    outbox: Outbox<S::Down>,
    site_buf: Vec<S::Up>,
    downs_buf: Vec<(Down, S::Down)>,
    item_buf: Vec<S::Item>,
}

impl<S, C> Cluster<S, C>
where
    S: Site,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    /// Build a cluster from pre-constructed site and coordinator state.
    ///
    /// Returns [`SimError::TooFewSites`] when fewer than 2 sites are given:
    /// with k = 1 the model degenerates to a single data stream and the
    /// communication measure is meaningless.
    pub fn new(sites: Vec<S>, coordinator: C) -> Result<Self, SimError> {
        if sites.len() < 2 {
            return Err(SimError::TooFewSites {
                sites: sites.len() as u32,
            });
        }
        let dead = vec![false; sites.len()];
        let trace_shared = Arc::new(TraceShared::new());
        let tracers = (0..sites.len())
            .map(|i| SiteTracer::new(Arc::clone(&trace_shared), TraceLane::Site(i as u32)))
            .collect();
        let coord_tracer = SiteTracer::new(Arc::clone(&trace_shared), TraceLane::Coordinator);
        Ok(Cluster {
            sites,
            coordinator,
            meter: MessageMeter::new(),
            fuse: DEFAULT_FUSE,
            items_fed: 0,
            dead,
            trace_shared,
            tracers,
            coord_tracer,
            up_queue: VecDeque::new(),
            outbox: Outbox::new(),
            site_buf: Vec::new(),
            downs_buf: Vec::new(),
            item_buf: Vec::new(),
        })
    }

    /// Override the per-arrival message fuse (mainly for livelock tests).
    pub fn with_fuse(mut self, fuse: u64) -> Self {
        self.fuse = fuse;
        self
    }

    /// Number of sites k.
    pub fn num_sites(&self) -> u32 {
        self.sites.len() as u32
    }

    /// Total number of items fed so far (the paper's `n` at the current
    /// time instance).
    pub fn items_fed(&self) -> u64 {
        self.items_fed
    }

    /// The communication meter.
    pub fn meter(&self) -> &MessageMeter {
        &self.meter
    }

    /// Mutable access to the meter (e.g. to reset after a warm-up phase).
    pub fn meter_mut(&mut self) -> &mut MessageMeter {
        &mut self.meter
    }

    /// Apply a trace config. Takes effect on the next recorded event — the
    /// deterministic runtime is single-threaded, so there is no handshake
    /// to wait for.
    pub fn set_trace(&mut self, config: TraceConfig) {
        self.trace_shared.configure(config);
    }

    /// The shared trace state (the backend wrapper hangs its driver-lane
    /// tracer off this).
    pub(crate) fn trace_shared(&self) -> &Arc<TraceShared> {
        &self.trace_shared
    }

    /// Merged snapshot of every lane's ring, in logical-clock order.
    /// Non-destructive.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut lanes: Vec<Vec<TraceEvent>> = self.tracers.iter().map(|t| t.snapshot()).collect();
        lanes.push(self.coord_tracer.snapshot());
        merge_snapshots(lanes)
    }

    /// Events lost to ring overflow across all lanes.
    pub fn trace_dropped(&self) -> u64 {
        self.tracers.iter().map(|t| t.dropped()).sum::<u64>() + self.coord_tracer.dropped()
    }

    /// Immutable access to the coordinator, for queries.
    pub fn coordinator(&self) -> &C {
        &self.coordinator
    }

    /// Mutable access to the coordinator (the [`crate::Backend`] query
    /// path shares one signature with the threaded runtime, which hands
    /// closures `&mut C` on the coordinator's own thread).
    pub fn coordinator_mut(&mut self) -> &mut C {
        &mut self.coordinator
    }

    /// Immutable access to a site's state (used by adversaries and tests).
    pub fn site(&self, id: SiteId) -> Option<&S> {
        self.sites.get(id.index())
    }

    /// Immutable access to all sites.
    pub fn sites(&self) -> &[S] {
        &self.sites
    }

    /// Administratively kill a site (fault injection): from now on feeds
    /// to it return [`SimError::SiteDown`], downstream messages addressed
    /// to it vanish into the partition (unmetered — nothing is received),
    /// and its state is frozen as of the kill. The rest of the cluster
    /// keeps running; [`Cluster::into_parts`] still returns the dead
    /// site's final state.
    pub fn kill_site(&mut self, site: SiteId) -> Result<(), SimError> {
        let k = self.sites.len() as u32;
        let slot = self
            .dead
            .get_mut(site.index())
            .ok_or(SimError::NoSuchSite {
                site: site.0,
                sites: k,
            })?;
        *slot = true;
        Ok(())
    }

    /// Deliver `item` to site `site` and run all triggered communication to
    /// quiescence.
    pub fn feed(&mut self, site: SiteId, item: S::Item) -> Result<(), SimError> {
        let k = self.sites.len();
        if self.dead.get(site.index()).copied().unwrap_or(false) {
            return Err(SimError::SiteDown { site: site.0 });
        }
        let s = self
            .sites
            .get_mut(site.index())
            .ok_or(SimError::NoSuchSite {
                site: site.0,
                sites: k as u32,
            })?;
        self.items_fed += 1;
        debug_assert!(self.site_buf.is_empty());
        s.on_item(item, &mut self.site_buf);
        self.tracers[site.index()].record(TraceEventKind::ItemRun { items: 1 });
        for up in self.site_buf.drain(..) {
            self.meter.record_up(up.kind(), up.size_words());
            self.tracers[site.index()].record(TraceEventKind::UpHop {
                kind: up.kind(),
                words: up.size_words(),
            });
            self.up_queue.push_back((site, up));
        }
        self.drain()
    }

    /// Feed a whole assigned stream, stopping at the first error.
    pub fn feed_stream<I>(&mut self, stream: I) -> Result<(), SimError>
    where
        I: IntoIterator<Item = (SiteId, S::Item)>,
    {
        for (site, item) in stream {
            self.feed(site, item)?;
        }
        Ok(())
    }

    /// Deliver a pre-assigned batch of items, running every triggered
    /// exchange to quiescence before the next item is offered — the
    /// transcript (message order, metered words) is bit-identical to
    /// calling [`Cluster::feed`] once per pair.
    ///
    /// The win is constant-factor: consecutive items for the same site are
    /// handed to [`Site::on_items`] as a run (one bounds check and one
    /// buffer round-trip per *message-triggering* item instead of per
    /// item), and sites that can prove a stretch of arrivals is quiet
    /// consume it in O(1).
    pub fn feed_batch(&mut self, batch: &[(SiteId, S::Item)]) -> Result<(), SimError>
    where
        S::Item: Clone,
    {
        let k = self.sites.len() as u32;
        let mut i = 0;
        while i < batch.len() {
            let site = batch[i].0;
            let mut j = i + 1;
            while j < batch.len() && batch[j].0 == site {
                j += 1;
            }
            if site.index() >= self.sites.len() {
                return Err(SimError::NoSuchSite {
                    site: site.0,
                    sites: k,
                });
            }
            if self.dead[site.index()] {
                return Err(SimError::SiteDown { site: site.0 });
            }
            // Stage the same-site run in a reusable buffer so the site
            // sees a plain item slice.
            self.item_buf.clear();
            self.item_buf
                .extend(batch[i..j].iter().map(|(_, it)| it.clone()));
            let mut off = 0;
            while off < self.item_buf.len() {
                debug_assert!(self.site_buf.is_empty());
                let consumed =
                    self.sites[site.index()].on_items(&self.item_buf[off..], &mut self.site_buf);
                debug_assert!(consumed > 0, "on_items must make progress");
                off += consumed.max(1);
                self.items_fed += consumed as u64;
                self.tracers[site.index()].record(TraceEventKind::ItemRun {
                    items: consumed as u64,
                });
                if !self.site_buf.is_empty() {
                    for up in self.site_buf.drain(..) {
                        self.meter.record_up(up.kind(), up.size_words());
                        self.tracers[site.index()].record(TraceEventKind::UpHop {
                            kind: up.kind(),
                            words: up.size_words(),
                        });
                        self.up_queue.push_back((site, up));
                    }
                    self.drain()?;
                }
            }
            i = j;
        }
        Ok(())
    }

    /// Process queued upstream messages (and the downstream messages they
    /// trigger) until the system is quiescent.
    fn drain(&mut self) -> Result<(), SimError> {
        let mut hops: u64 = 0;
        while let Some((from, up)) = self.up_queue.pop_front() {
            hops += 1;
            if hops > self.fuse {
                return Err(SimError::Livelock { fuse: self.fuse });
            }
            debug_assert!(self.outbox.is_empty());
            self.coordinator.on_message(from, up, &mut self.outbox);
            // Swap the downstream batch into a reusable buffer so sites can
            // be borrowed mutably without allocating per coordinator step.
            let mut downs = std::mem::take(&mut self.downs_buf);
            std::mem::swap(&mut downs, &mut self.outbox.msgs);
            let mut result = Ok(());
            for (dest, msg) in downs.drain(..) {
                result = match dest {
                    Down::Unicast(dst) => self.deliver_down(dst, &msg),
                    Down::Broadcast => {
                        // Only the deterministic runtime sees a broadcast
                        // pre-expansion, so this lane is where broadcast
                        // bursts are first-class in a trace.
                        self.coord_tracer.record(TraceEventKind::Broadcast {
                            kind: msg.kind(),
                            fanout: self.dead.iter().filter(|d| !**d).count() as u32,
                        });
                        (0..self.sites.len())
                            .try_for_each(|i| self.deliver_down(SiteId(i as u32), &msg))
                    }
                };
                if result.is_err() {
                    break;
                }
            }
            downs.clear();
            self.downs_buf = downs;
            result?;
        }
        Ok(())
    }

    fn deliver_down(&mut self, dst: SiteId, msg: &S::Down) -> Result<(), SimError> {
        // A dead site receives nothing: the hop is dropped *before*
        // metering (downs are metered at the receiving side, and nothing
        // is received), matching the parallel runtimes' skip-on-send.
        if self.dead.get(dst.index()).copied().unwrap_or(false) {
            return Ok(());
        }
        self.meter.record_down(msg.kind(), msg.size_words());
        let k = self.sites.len() as u32;
        let s = self
            .sites
            .get_mut(dst.index())
            .ok_or(SimError::NoSuchSite {
                site: dst.0,
                sites: k,
            })?;
        debug_assert!(self.site_buf.is_empty());
        s.on_message(msg, &mut self.site_buf);
        self.tracers[dst.index()].record(TraceEventKind::DownHop {
            kind: msg.kind(),
            words: msg.size_words(),
        });
        for up in self.site_buf.drain(..) {
            self.meter.record_up(up.kind(), up.size_words());
            self.tracers[dst.index()].record(TraceEventKind::UpHop {
                kind: up.kind(),
                words: up.size_words(),
            });
            self.up_queue.push_back((dst, up));
        }
        Ok(())
    }

    /// Tear down the cluster, returning the coordinator, the sites, and the
    /// final meter.
    pub fn into_parts(self) -> (C, Vec<S>, MessageMeter) {
        (self.coordinator, self.sites, self.meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: sites forward every item; coordinator acks every 3rd
    /// message with a broadcast; an ack does not trigger further traffic.
    #[derive(Debug, Default)]
    struct FwdSite {
        seen: u64,
        acks: u64,
    }

    #[derive(Debug)]
    enum FwdUp {
        Item(u64),
    }
    #[derive(Debug)]
    enum FwdDown {
        Ack,
    }

    impl MessageSize for FwdUp {
        fn size_words(&self) -> u64 {
            2
        }
        fn kind(&self) -> &'static str {
            "fwd/item"
        }
    }
    impl MessageSize for FwdDown {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "fwd/ack"
        }
    }

    impl Site for FwdSite {
        type Item = u64;
        type Up = FwdUp;
        type Down = FwdDown;
        fn on_item(&mut self, item: u64, out: &mut Vec<FwdUp>) {
            self.seen += 1;
            out.push(FwdUp::Item(item));
        }
        fn on_message(&mut self, _msg: &FwdDown, _out: &mut Vec<FwdUp>) {
            self.acks += 1;
        }
    }

    #[derive(Debug, Default)]
    struct FwdCoord {
        received: u64,
        sum: u64,
    }

    impl Coordinator for FwdCoord {
        type Up = FwdUp;
        type Down = FwdDown;
        fn on_message(&mut self, _from: SiteId, msg: FwdUp, out: &mut Outbox<FwdDown>) {
            let FwdUp::Item(x) = msg;
            self.received += 1;
            self.sum += x;
            if self.received.is_multiple_of(3) {
                out.broadcast(FwdDown::Ack);
            }
        }
    }

    fn cluster(k: usize) -> Cluster<FwdSite, FwdCoord> {
        let sites = (0..k).map(|_| FwdSite::default()).collect();
        Cluster::new(sites, FwdCoord::default()).unwrap()
    }

    #[test]
    fn rejects_small_clusters() {
        let err = Cluster::new(vec![FwdSite::default()], FwdCoord::default()).unwrap_err();
        assert_eq!(err, SimError::TooFewSites { sites: 1 });
    }

    #[test]
    fn feed_runs_to_quiescence_and_meters() {
        let mut c = cluster(4);
        for i in 0..6u64 {
            c.feed(SiteId((i % 4) as u32), i * 10).unwrap();
        }
        assert_eq!(c.coordinator().received, 6);
        assert_eq!(c.coordinator().sum, (1 + 2 + 3 + 4 + 5) * 10);
        // 6 upstream item messages of 2 words each.
        assert_eq!(c.meter().kind("fwd/item").messages, 6);
        assert_eq!(c.meter().kind("fwd/item").words, 12);
        // 2 broadcasts (after messages 3 and 6), each expands to k=4 acks.
        assert_eq!(c.meter().kind("fwd/ack").messages, 8);
        // Every site saw both acks.
        for s in c.sites() {
            assert_eq!(s.acks, 2);
        }
        assert_eq!(c.items_fed(), 6);
    }

    #[test]
    fn feed_to_missing_site_errors() {
        let mut c = cluster(2);
        let err = c.feed(SiteId(9), 1).unwrap_err();
        assert_eq!(err, SimError::NoSuchSite { site: 9, sites: 2 });
    }

    #[test]
    fn feed_batch_matches_per_item_feed() {
        let stream: Vec<(SiteId, u64)> = (0..200u64)
            .map(|i| (SiteId((i % 3) as u32), i * 7))
            .collect();
        let mut per_item = cluster(3);
        for &(site, item) in &stream {
            per_item.feed(site, item).unwrap();
        }
        let mut batched = cluster(3);
        batched.feed_batch(&stream).unwrap();
        assert_eq!(batched.items_fed(), per_item.items_fed());
        assert_eq!(batched.coordinator().sum, per_item.coordinator().sum);
        assert_eq!(batched.meter().report(), per_item.meter().report());
        // Mixed chunk sizes must not change the transcript either.
        let mut chunked = cluster(3);
        for chunk in stream.chunks(7) {
            chunked.feed_batch(chunk).unwrap();
        }
        assert_eq!(chunked.meter().report(), per_item.meter().report());
    }

    #[test]
    fn feed_batch_to_missing_site_errors() {
        let mut c = cluster(2);
        let err = c.feed_batch(&[(SiteId(0), 1), (SiteId(9), 2)]).unwrap_err();
        assert_eq!(err, SimError::NoSuchSite { site: 9, sites: 2 });
    }

    #[test]
    fn feed_stream_consumes_pairs() {
        let mut c = cluster(3);
        let stream = (0..9u64).map(|i| (SiteId((i % 3) as u32), i));
        c.feed_stream(stream).unwrap();
        assert_eq!(c.coordinator().received, 9);
    }

    /// A site that replies to every ack with another item forever — the
    /// fuse must convert the livelock into an error.
    #[derive(Debug, Default)]
    struct LoopSite;
    impl Site for LoopSite {
        type Item = u64;
        type Up = FwdUp;
        type Down = FwdDown;
        fn on_item(&mut self, item: u64, out: &mut Vec<FwdUp>) {
            out.push(FwdUp::Item(item));
        }
        fn on_message(&mut self, _msg: &FwdDown, out: &mut Vec<FwdUp>) {
            out.push(FwdUp::Item(0));
        }
    }

    #[derive(Debug, Default)]
    struct LoopCoord;
    impl Coordinator for LoopCoord {
        type Up = FwdUp;
        type Down = FwdDown;
        fn on_message(&mut self, from: SiteId, _msg: FwdUp, out: &mut Outbox<FwdDown>) {
            out.unicast(from, FwdDown::Ack);
        }
    }

    #[test]
    fn livelock_hits_fuse() {
        let sites = vec![LoopSite, LoopSite];
        let mut c = Cluster::new(sites, LoopCoord).unwrap().with_fuse(1000);
        let err = c.feed(SiteId(0), 1).unwrap_err();
        assert_eq!(err, SimError::Livelock { fuse: 1000 });
    }

    #[test]
    fn killed_site_rejects_feeds_and_receives_nothing() {
        let mut c = cluster(4);
        for i in 0..2u64 {
            c.feed(SiteId(i as u32), i).unwrap();
        }
        c.kill_site(SiteId(1)).unwrap();
        // Feeds to the dead site error without touching its state.
        assert_eq!(
            c.feed(SiteId(1), 5).unwrap_err(),
            SimError::SiteDown { site: 1 }
        );
        assert_eq!(
            c.feed_batch(&[(SiteId(1), 7), (SiteId(0), 6)]).unwrap_err(),
            SimError::SiteDown { site: 1 }
        );
        // Broadcast acks (after the 3rd upstream message) skip the dead
        // site: the receiving-side meter counts k-1 acks, and the dead
        // site's ack count stays frozen.
        c.feed(SiteId(2), 8).unwrap();
        assert_eq!(c.meter().kind("fwd/ack").messages, 3);
        assert_eq!(c.sites()[1].acks, 0);
        for alive in [0usize, 2, 3] {
            assert_eq!(c.sites()[alive].acks, 1);
        }
        // Killing an unknown site is an error, not a silent no-op.
        assert_eq!(
            c.kill_site(SiteId(9)).unwrap_err(),
            SimError::NoSuchSite { site: 9, sites: 4 }
        );
    }

    #[test]
    fn tracing_captures_hops_without_touching_the_meter() {
        let mut traced = cluster(4);
        traced.set_trace(TraceConfig::on());
        let mut plain = cluster(4);
        for i in 0..6u64 {
            traced.feed(SiteId((i % 4) as u32), i * 10).unwrap();
            plain.feed(SiteId((i % 4) as u32), i * 10).unwrap();
        }
        // Transparency: tracing never changes the metered transcript.
        assert_eq!(traced.meter().report(), plain.meter().report());
        assert!(plain.trace_events().is_empty());
        let events = traced.trace_events();
        let summary = dtrack_trace::TraceSummary::from_events(&events, traced.trace_dropped());
        // 6 item runs + 6 up hops; 2 broadcasts expanding to 4 downs each.
        assert_eq!(summary.count("item-run"), 6);
        assert_eq!(summary.count("up-hop"), 6);
        assert_eq!(summary.count("broadcast"), 2);
        assert_eq!(summary.count("down-hop"), 8);
        assert_eq!(summary.up_words, traced.meter().up().words);
        assert_eq!(summary.down_words, traced.meter().down().words);
        // Single-threaded: clocks are the dense sequence 0..n.
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.clock, i as u64);
        }
    }

    #[test]
    fn traced_broadcast_fanout_excludes_dead_sites() {
        let mut c = cluster(4);
        c.set_trace(TraceConfig::on());
        c.kill_site(SiteId(1)).unwrap();
        for i in 0..3u64 {
            c.feed(SiteId(if i % 4 == 1 { 0 } else { i as u32 % 4 }), i)
                .unwrap();
        }
        let events = c.trace_events();
        let bcast = events
            .iter()
            .find_map(|e| match e.kind {
                TraceEventKind::Broadcast { fanout, .. } => Some(fanout),
                _ => None,
            })
            .expect("one broadcast after 3 upstream messages");
        assert_eq!(bcast, 3);
        // The dead site received no down hop.
        assert!(!events.iter().any(|e| {
            matches!(e.kind, TraceEventKind::DownHop { .. }) && e.lane == TraceLane::Site(1)
        }));
    }

    #[test]
    fn into_parts_returns_state() {
        let mut c = cluster(2);
        c.feed(SiteId(0), 7).unwrap();
        let (coord, sites, meter) = c.into_parts();
        assert_eq!(coord.sum, 7);
        assert_eq!(sites.len(), 2);
        assert_eq!(meter.kind("fwd/item").messages, 1);
    }
}
