//! Adaptive AIMD flow control for free-running ingest.
//!
//! The paper's guarantee is a communication budget, and PR 3/PR 5
//! measured how free-running ingest can blow it: sites racing ahead of
//! coordinator feedback flood stale-threshold deltas (~30x words at the
//! worst). The fixed one-run-per-site window papered over this with
//! hand-picked constants; this module replaces the constants with a
//! per-site **additive-increase / multiplicative-decrease** controller —
//! classic congestion control, with "congestion" defined as *word-budget
//! drift*:
//!
//! * every cleanly completed run grows that site's run-length window by
//!   [`FlowControlConfig::increase`] (additive increase, up to `win_max`);
//! * a **drift signal** halves windows (multiplicative decrease, floored
//!   at `win_min`). Drift fires when the observed metered words-per-item
//!   exceeds the reference rate installed via `cost_hint` by
//!   `drift_factor` (a global signal — the meter is cluster-wide — so
//!   every window halves), or when a site's previous run is still
//!   unconsumed after `backpressure_wait` at the moment its buffer is
//!   full (a per-site backpressure signal — only that window halves).
//!
//! [`AimdController`] is a *pure* state machine: no clocks, no channels,
//! no randomness. Feeding two instances the same observation sequence
//! produces bit-identical traces — that determinism is what the
//! proptests pin. The racy part (when observations *happen*) lives in
//! the backends' `AimdWindow`; it only ever changes run boundaries on
//! the free-running `ingest` path, never the settled `feed_batch`
//! schedule, so golden transcripts are untouched.

#![deny(missing_docs)]

use std::fmt;
use std::time::Duration;

/// Hard floor for run-length windows (items per run).
pub const WIN_MIN: u32 = 16;

/// Hard ceiling for run-length windows (items per run).
pub const WIN_MAX: u32 = 4096;

/// Tuning knobs for the AIMD free-running flow controller.
///
/// The default configuration is adaptive; [`FlowControlConfig::fixed`]
/// degenerates it to the pre-controller fixed window (`win_min == win_max`,
/// `increase = 0`) for baseline comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowControlConfig {
    /// Smallest per-site run-length window the controller will use.
    pub win_min: u32,
    /// Largest per-site run-length window the controller will grow to.
    pub win_max: u32,
    /// Starting window for every site (clamped into `[win_min, win_max]`).
    pub initial: u32,
    /// Additive increase applied to a site's window after each cleanly
    /// completed run (0 freezes the window).
    pub increase: u32,
    /// Drift threshold: observed words-per-item above `reference ×
    /// drift_factor` fires the global drift signal. Must be ≥ 1.0.
    pub drift_factor: f64,
    /// How many flushed items between metered words-per-item probes.
    /// Probes read a relaxed cluster-wide atomic, so frequent sampling is
    /// cheap — and the sampling rate bounds how fast the controller can
    /// push back: windows grow additively per clean *run* but halve at
    /// most once per probe, so at high site counts a sparse probe lets
    /// growth outrun control.
    pub sample_items: u64,
    /// How long a full-buffer flush waits on the previous run before
    /// treating the site as backpressured (per-site drift signal).
    pub backpressure_wait: Duration,
    /// Cluster-wide in-flight budget (commands plus undelivered protocol
    /// messages): `ingest` stalls the source before enqueuing a new run
    /// while the cluster's quiescence counter is above this, so
    /// coordinator feedback can never fall a whole free-running stream
    /// behind the items it regulates. `0` disables the stall — the
    /// pre-controller behaviour, kept by [`FlowControlConfig::fixed`].
    /// Per-site windows bound how far *one* site runs ahead; this bounds
    /// the *sum*, which is what actually backs up the (shared)
    /// coordinator when sites outnumber cores.
    pub inflight_cap: u32,
}

impl Default for FlowControlConfig {
    fn default() -> Self {
        FlowControlConfig {
            win_min: WIN_MIN,
            win_max: WIN_MAX,
            initial: 128,
            increase: 16,
            drift_factor: 1.25,
            sample_items: 2048,
            backpressure_wait: Duration::from_millis(2),
            inflight_cap: 1024,
        }
    }
}

impl FlowControlConfig {
    /// The degenerate fixed-window configuration: every run is exactly
    /// `len` items and nothing ever adapts — the pre-AIMD baseline the
    /// bench cells compare against.
    pub fn fixed(len: u32) -> Self {
        let len = len.max(1);
        FlowControlConfig {
            win_min: len,
            win_max: len,
            initial: len,
            increase: 0,
            inflight_cap: 0,
            ..FlowControlConfig::default()
        }
    }

    /// Validate the knobs; `Err` names the offending constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.win_min == 0 {
            return Err("flow-control win_min must be >= 1".to_owned());
        }
        if self.win_min > self.win_max {
            return Err(format!(
                "flow-control win_min {} exceeds win_max {}",
                self.win_min, self.win_max
            ));
        }
        // NaN must fail too, so the comparison alone is not enough.
        if self.drift_factor.is_nan() || self.drift_factor < 1.0 {
            return Err(format!(
                "flow-control drift_factor must be >= 1.0, got {}",
                self.drift_factor
            ));
        }
        if self.sample_items == 0 {
            return Err("flow-control sample_items must be >= 1".to_owned());
        }
        Ok(())
    }
}

/// Observable controller state, answered through
/// [`crate::Query::FlowControl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowControlStats {
    /// Current per-site run-length windows (items per run), indexed by
    /// site.
    pub windows: Vec<u32>,
    /// How many times the drift signal fired (rate drift or
    /// backpressure).
    pub drift_events: u64,
    /// How many windows were actually halved (a drift event on a window
    /// already at `win_min` backs nothing off).
    pub backoffs: u64,
}

impl fmt::Display for FlowControlStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let min = self.windows.iter().min().copied().unwrap_or(0);
        let max = self.windows.iter().max().copied().unwrap_or(0);
        write!(
            f,
            "flow(win={min}..{max}, drift={}, backoff={})",
            self.drift_events, self.backoffs
        )
    }
}

/// The pure AIMD state machine: per-site run-length windows plus event
/// counters. Deterministic — same observation sequence, same trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AimdController {
    config: FlowControlConfig,
    windows: Vec<u32>,
    drift_events: u64,
    backoffs: u64,
}

impl AimdController {
    /// A controller for `sites` sites, all windows at the (clamped)
    /// initial value.
    pub fn new(sites: usize, config: FlowControlConfig) -> Self {
        let initial = config.initial.clamp(config.win_min, config.win_max);
        AimdController {
            config,
            windows: vec![initial; sites],
            drift_events: 0,
            backoffs: 0,
        }
    }

    /// The configuration this controller runs under.
    pub fn config(&self) -> &FlowControlConfig {
        &self.config
    }

    /// Current run-length window for `site`.
    pub fn window(&self, site: usize) -> u32 {
        self.windows[site]
    }

    /// Additive increase: a run for `site` completed cleanly.
    pub fn clean_run(&mut self, site: usize) {
        let w = &mut self.windows[site];
        *w = w
            .saturating_add(self.config.increase)
            .min(self.config.win_max);
    }

    /// Multiplicative decrease on one site (the backpressure signal).
    pub fn drift_site(&mut self, site: usize) {
        self.drift_events += 1;
        self.halve(site);
    }

    /// Multiplicative decrease on every site (the global words-rate
    /// signal — the meter that observed the drift is cluster-wide).
    pub fn drift_all(&mut self) {
        self.drift_events += 1;
        for site in 0..self.windows.len() {
            self.halve(site);
        }
    }

    fn halve(&mut self, site: usize) {
        let w = &mut self.windows[site];
        if *w > self.config.win_min {
            *w = (*w / 2).max(self.config.win_min);
            self.backoffs += 1;
        }
    }

    /// Snapshot the observable state.
    pub fn stats(&self) -> FlowControlStats {
        FlowControlStats {
            windows: self.windows.clone(),
            drift_events: self.drift_events,
            backoffs: self.backoffs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_grow_additively_and_cap_at_win_max() {
        let cfg = FlowControlConfig {
            win_min: 4,
            win_max: 40,
            initial: 8,
            increase: 16,
            ..FlowControlConfig::default()
        };
        let mut c = AimdController::new(2, cfg);
        assert_eq!(c.window(0), 8);
        c.clean_run(0);
        assert_eq!(c.window(0), 24);
        c.clean_run(0);
        assert_eq!(c.window(0), 40);
        c.clean_run(0);
        assert_eq!(c.window(0), 40, "capped at win_max");
        assert_eq!(c.window(1), 8, "other sites untouched");
    }

    #[test]
    fn drift_halves_and_floors_at_win_min() {
        let cfg = FlowControlConfig {
            win_min: 16,
            win_max: 4096,
            initial: 100,
            ..FlowControlConfig::default()
        };
        let mut c = AimdController::new(1, cfg);
        c.drift_site(0);
        assert_eq!(c.window(0), 50);
        c.drift_site(0);
        assert_eq!(c.window(0), 25);
        c.drift_site(0);
        assert_eq!(c.window(0), 16, "floored, not 12");
        let stats = c.stats();
        assert_eq!(stats.drift_events, 3);
        assert_eq!(stats.backoffs, 3);
        // A drift at the floor counts the event but not a backoff.
        c.drift_site(0);
        assert_eq!(c.window(0), 16);
        assert_eq!(c.stats().drift_events, 4);
        assert_eq!(c.stats().backoffs, 3);
    }

    #[test]
    fn drift_all_hits_every_site() {
        let mut c = AimdController::new(3, FlowControlConfig::default());
        c.drift_all();
        assert!(c.stats().windows.iter().all(|&w| w == 64));
        assert_eq!(c.stats().backoffs, 3);
        assert_eq!(c.stats().drift_events, 1);
    }

    #[test]
    fn fixed_config_never_moves() {
        let mut c = AimdController::new(2, FlowControlConfig::fixed(128));
        c.clean_run(0);
        c.drift_all();
        c.drift_site(1);
        assert_eq!(c.stats().windows, vec![128, 128]);
        assert_eq!(c.stats().backoffs, 0, "no halving below win_min");
    }

    #[test]
    fn validate_rejects_malformed_bounds() {
        assert!(FlowControlConfig::default().validate().is_ok());
        assert!(FlowControlConfig::fixed(1).validate().is_ok());
        let bad = FlowControlConfig {
            win_min: 0,
            ..FlowControlConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = FlowControlConfig {
            win_min: 64,
            win_max: 16,
            ..FlowControlConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = FlowControlConfig {
            drift_factor: 0.5,
            ..FlowControlConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = FlowControlConfig {
            drift_factor: f64::NAN,
            ..FlowControlConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = FlowControlConfig {
            sample_items: 0,
            ..FlowControlConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn stats_display_is_compact() {
        let c = AimdController::new(2, FlowControlConfig::fixed(32));
        assert_eq!(
            c.stats().to_string(),
            "flow(win=32..32, drift=0, backoff=0)"
        );
    }
}
