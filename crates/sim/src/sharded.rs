//! Work-stealing sharded runtime: many logical sites multiplexed onto a
//! fixed worker pool.
//!
//! The threaded runtime ([`crate::threaded::ThreadedCluster`]) spawns one
//! OS thread per site, which stops scaling around k ≈ cores: past that,
//! threads mostly context-switch instead of ingesting. This runtime keeps
//! the *same* `Site`/`Coordinator` state machines and the *same* metered
//! transcript, but runs them on `W` worker threads (default: the number
//! of cores), so one process can host thousands of logical sites.
//!
//! ## Design
//!
//! * **Per-site run queues.** Every logical site owns a bounded FIFO
//!   queue of commands (items, batches, runs, coordinator downs). All of
//!   a site's work flows through its own queue, so per-site arrival
//!   order — which the quiescence protocol and the transcript-identical
//!   batch schedule depend on — is a property of the data structure, not
//!   of scheduling luck.
//! * **Home shards + run-granularity stealing.** Each site is pinned to
//!   a home shard (`site % workers`). A shard is a deque of *ready
//!   sites*: a site is enqueued when its (previously empty) queue gains
//!   a command, and dequeued by exactly one worker, which then serves one
//!   *site-run*: the site's queue in FIFO order up to a fairness quantum
//!   (one whole batched run, or a burst of light commands), after which
//!   a still-busy site goes to the back of its home shard and the worker
//!   claims the next ready site. Idle workers steal whole site-runs from
//!   the back of other shards' deques; they never split one site's queue
//!   across workers. A `scheduled` flag, flipped only under the site's
//!   queue lock, guarantees a site is in at most one shard deque and
//!   served by at most one worker at a time — so per-site FIFO order
//!   survives any interleaving of steals and requeues.
//! * **Same quiescence accounting.** Every command carries a
//!   `PendingToken` from the threaded runtime: created at enqueue time,
//!   released on drop — after the handler finished and its outputs
//!   (carrying their own tokens) were enqueued, or when a dead site's
//!   queue is drained, or when a handler panics. [`ShardedCluster::settle`]
//!   parks on the same counter, so it can never hang on a stalled or
//!   dead worker.
//! * **Per-site meters.** Upstream hops are metered at the sending site,
//!   downstream hops at the receiving site, each into that site's own
//!   [`MessageMeter`] (touched only by the worker currently serving the
//!   site — no contended lock on the per-hop path). [`ShardedCluster::cost`]
//!   and [`ShardedCluster::shutdown`] merge them on demand, exactly like
//!   the threaded runtime's per-thread meters.
//! * **Death containment.** A panicking site handler poisons only that
//!   site: the worker catches the unwind, discards the site's state,
//!   marks its queue dead (draining it releases the queued tokens and
//!   resolves its `RunTicket`s as [`SimError::WorkerGone`]), and keeps
//!   serving other sites. The pool never loses a worker to one bad site.
//!
//! ## Why stealing whole site-runs keeps transcripts bit-identical
//!
//! The equivalence suites drive [`ShardedCluster::feed_batch`], which
//! ships one site's run at a time and settles the triggered cascade
//! between quiescent steps — under that schedule at most one site-run is
//! in flight, and it is served by exactly one worker in FIFO order, so
//! which worker (home or thief) serves it is unobservable: answers and
//! metered words match the deterministic runner bit-for-bit. Stealing
//! individual *items* instead would interleave one site's arrivals
//! across workers and break the per-site order the protocols assume.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use dtrack_trace::{
    merge_snapshots, SiteTracer, TraceConfig, TraceEvent, TraceEventKind, TraceLane, TraceShared,
};

use crate::error::SimError;
use crate::meter::MessageMeter;
use crate::proto::{Coordinator, Down, MessageSize, Outbox, Site, SiteId};
use crate::threaded::{Pending, PendingToken, RunTicket, SITE_QUEUE_CAP};

/// Configuration of the sharded worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Worker threads serving all sites; `None` means one per available
    /// core (`std::thread::available_parallelism`). Clamped to ≥ 1.
    pub workers: Option<usize>,
    /// Per-site command-queue capacity (see
    /// [`crate::threaded::SITE_QUEUE_CAP`], the shared default). Clamped
    /// to ≥ 1.
    pub site_queue_cap: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            workers: None,
            site_queue_cap: SITE_QUEUE_CAP,
        }
    }
}

impl ShardedConfig {
    /// The worker count this config resolves to on this machine.
    pub fn resolved_workers(&self) -> usize {
        self.workers.unwrap_or_else(default_workers).max(1)
    }
}

/// The default worker count: one per available core (1 when the platform
/// cannot report parallelism).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One queued unit of site work. Mirrors the threaded runtime's command
/// set; meter snapshots and teardown are handled out-of-band (the pool
/// owns the site state, so no `Meter`/`Stop` commands are needed).
enum ShardCmd<S: Site> {
    /// One item; the per-item slow path.
    Item(S::Item, PendingToken),
    /// A same-site run consumed through [`Site::on_items`] one quiescent
    /// step at a time (see [`ShardedCluster::feed_batch`]).
    Batch {
        items: Vec<S::Item>,
        progress: Sender<usize>,
        token: PendingToken,
    },
    /// Continue the in-progress batch with the next quiescent step.
    Resume(PendingToken),
    /// A same-site run consumed to completion without global
    /// synchronization (free-running parallel ingest).
    Run(Vec<S::Item>, Sender<()>, PendingToken),
    /// A downstream protocol message from the coordinator.
    Down(Arc<S::Down>, PendingToken),
    /// Fault injection: hold this site's worker for the given number of
    /// microseconds (a slow consumer). The token keeps the system
    /// non-quiescent for the duration, so `settle()` observes the stall —
    /// and proves it terminates anyway.
    Stall(u64, PendingToken),
}

/// A site's command queue plus its scheduling state. `scheduled` flips
/// only under the queue lock, which is what makes "in at most one shard
/// deque, served by at most one worker" an invariant rather than a race.
struct QueueInner<S: Site> {
    cmds: VecDeque<ShardCmd<S>>,
    scheduled: bool,
    dead: bool,
}

/// State of a batch being consumed one quiescent step at a time.
struct BatchState<S: Site> {
    items: Vec<S::Item>,
    off: usize,
    progress: Sender<usize>,
}

/// The part of a site only its current server touches: the protocol
/// state machine, its meter, the in-progress batch, and scratch buffers.
/// Behind its own mutex so `cost()` and `shutdown()` can snapshot meters
/// between claims (the lock is held for at most one serve quantum, and
/// is uncontended on the serving path — one server per site).
struct SiteExec<S: Site> {
    /// `None` once the site died (its state is discarded, as a dead
    /// thread's would be) or after `shutdown` collected it.
    site: Option<S>,
    meter: MessageMeter,
    /// Words already published to the pool-wide hint counter.
    words_reported: u64,
    batch: Option<BatchState<S>>,
    /// Reused upstream-message buffer.
    out: Vec<S::Up>,
    /// This site's trace ring (touched only by the worker currently
    /// serving the site, exactly like the meter; snapshotted under the
    /// exec lock by `trace_events`).
    tracer: SiteTracer,
}

struct SiteSlot<S: Site> {
    queue: Mutex<QueueInner<S>>,
    /// Producers blocked on a full queue park here.
    space_cv: Condvar,
    exec: Mutex<SiteExec<S>>,
    home: usize,
    /// Administrative fault-injection flag ([`ShardedCluster::kill_site`]):
    /// feeds to this site error with [`SimError::SiteDown`] and
    /// coordinator downs are dropped unmetered. Distinct from
    /// `QueueInner::dead`, the panic path — an administratively killed
    /// site's state is frozen and returned intact by `shutdown`, and the
    /// run is *not* tainted.
    down: AtomicBool,
}

/// One shard's ready-site deques. The urgent lane holds sites whose
/// next queued command is coordinator feedback (a `Down`): workers
/// drain it first across all shards, because a site sitting on
/// unapplied feedback while other sites consume items is exactly the
/// staleness that makes protocols over-communicate. The one-thread-per-
/// site runtime gets this ordering from the OS for free (a polled idle
/// site is a blocked thread that wakes and replies immediately); the
/// pool has to schedule it deliberately. Per-site FIFO is untouched --
/// the lane only decides *which site* is claimed next, never reorders
/// one site's queue.
#[derive(Default)]
struct ShardQueues {
    urgent: VecDeque<usize>,
    normal: VecDeque<usize>,
}

/// Everything the workers, the coordinator thread, and the handle share.
struct Pool<S: Site> {
    sites: Vec<SiteSlot<S>>,
    /// Per-shard deques of ready site indices.
    shards: Vec<Mutex<ShardQueues>>,
    /// Ready sites across all shards (parking heuristic; exact counts
    /// are in the shard deques).
    ready: AtomicUsize,
    sched_lock: Mutex<()>,
    sched_cv: Condvar,
    /// Graceful stop: workers exit when no work is available.
    stop: AtomicBool,
    /// Hard stop (abandon path): workers exit between commands and
    /// producers stop blocking on full queues.
    abort: AtomicBool,
    /// Any site died (its panic was contained but the run is tainted).
    failed: AtomicBool,
    pending: Arc<Pending>,
    queue_cap: usize,
    /// Relaxed running total of metered words, published by workers after
    /// every serve quantum. Read by [`ShardedCluster::words_hint`] so
    /// flow-control probes never contend for the per-site exec locks the
    /// way a full `cost()` snapshot does.
    words_shared: AtomicU64,
    /// Shared trace configuration every site's [`SiteTracer`] reads; off
    /// by default so the untraced hot path pays one relaxed load and
    /// branch per event site.
    trace_shared: Arc<TraceShared>,
}

impl<S: Site> Pool<S> {
    fn lock_queue(&self, idx: usize) -> MutexGuard<'_, QueueInner<S>> {
        self.sites[idx]
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn lock_exec(&self, idx: usize) -> MutexGuard<'_, SiteExec<S>> {
        self.sites[idx]
            .exec
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue a command on a site's queue, blocking while the queue is
    /// full (backpressure). Fails — handing the command back so its
    /// token releases with it — when the site is dead.
    fn push_cmd(&self, idx: usize, cmd: ShardCmd<S>) -> Result<(), ShardCmd<S>> {
        let slot = &self.sites[idx];
        let mut q = self.lock_queue(idx);
        while !q.dead && !self.abort.load(Ordering::SeqCst) && q.cmds.len() >= self.queue_cap {
            q = slot.space_cv.wait(q).unwrap_or_else(|e| e.into_inner());
        }
        if q.dead || self.abort.load(Ordering::SeqCst) {
            return Err(cmd);
        }
        // A site whose next command is feedback goes to the urgent lane;
        // the pushed command is the front exactly when the queue was
        // empty (i.e. the site is newly ready).
        let urgent = q.cmds.is_empty() && matches!(&cmd, ShardCmd::Down(..));
        q.cmds.push_back(cmd);
        let newly_ready = !q.scheduled;
        if newly_ready {
            q.scheduled = true;
        }
        drop(q);
        if newly_ready {
            self.enqueue_site(idx, urgent);
        }
        Ok(())
    }

    /// Put a newly ready site on its home shard and wake one worker. The
    /// notify is taken under `sched_lock`, after the ready increment, so
    /// a worker that checked the counter but has not parked yet cannot
    /// miss the wakeup.
    fn enqueue_site(&self, idx: usize, urgent: bool) {
        let home = self.sites[idx].home;
        // Count before publishing: a worker can pop the entry the moment
        // it lands in the deque, and its decrement must never see the
        // counter still at the pre-increment value (underflow would wrap
        // and leave the park check spinning on a huge count).
        self.ready.fetch_add(1, Ordering::SeqCst);
        {
            let mut shard = self.shards[home].lock().unwrap_or_else(|e| e.into_inner());
            if urgent {
                shard.urgent.push_back(idx);
            } else {
                shard.normal.push_back(idx);
            }
        }
        let _guard = self.sched_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.sched_cv.notify_one();
    }

    /// Claim the next ready site for worker `w`: pending feedback
    /// (urgent lane) across all shards first, then item work — own shard
    /// from the front, steals from the *back* of another shard (the
    /// site least recently made ready there — classic steal order, and
    /// the whole site-run moves, never part of one site's queue).
    fn next_site(&self, w: usize) -> Option<usize> {
        let shards = self.shards.len();
        for lane in 0..2 {
            for i in 0..shards {
                let shard = &self.shards[(w + i) % shards];
                let mut queues = shard.lock().unwrap_or_else(|e| e.into_inner());
                let deque = if lane == 0 {
                    &mut queues.urgent
                } else {
                    &mut queues.normal
                };
                let idx = if i == 0 {
                    deque.pop_front()
                } else {
                    deque.pop_back()
                };
                if let Some(idx) = idx {
                    self.ready.fetch_sub(1, Ordering::SeqCst);
                    return Some(idx);
                }
            }
        }
        None
    }

    /// Wake every parked worker (stop flags changed).
    fn wake_all(&self) {
        let _guard = self.sched_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.sched_cv.notify_all();
    }

    /// Contain a dead site: discard its state machine and in-progress
    /// batch (dropping the batch's progress sender unblocks a waiting
    /// feeder with an error), drain its queue (releasing every queued
    /// token and resolving queued `RunTicket`s as worker-gone), and wake
    /// blocked producers so they observe the death.
    fn kill_site(&self, idx: usize, exec: &mut SiteExec<S>) {
        self.failed.store(true, Ordering::SeqCst);
        exec.site = None;
        exec.batch = None;
        exec.out.clear();
        let dropped: Vec<ShardCmd<S>> = {
            let mut q = self.lock_queue(idx);
            q.dead = true;
            q.cmds.drain(..).collect()
        };
        self.sites[idx].space_cv.notify_all();
        // Tokens (and Run `done` senders) release outside the lock.
        drop(dropped);
    }
}

/// Coordinator-thread commands (same shape as the threaded runtime's).
enum CoordCmd<C: Coordinator> {
    Up(SiteId, C::Up, PendingToken),
    With(Box<dyn FnOnce(&mut C) + Send>),
    Stop(Sender<C>),
}

/// A cluster multiplexing many logical sites onto a fixed work-stealing
/// worker pool plus one coordinator thread. Public surface mirrors
/// [`crate::threaded::ThreadedCluster`].
pub struct ShardedCluster<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    pool: Arc<Pool<S>>,
    coord_tx: Option<Sender<CoordCmd<C>>>,
    worker_handles: Vec<JoinHandle<()>>,
    coord_handle: Option<JoinHandle<()>>,
}

impl<S, C> ShardedCluster<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    /// Spawn the default pool: one worker per core, default queue cap.
    pub fn spawn(sites: Vec<S>, coordinator: C) -> Result<Self, SimError> {
        Self::spawn_with(sites, coordinator, ShardedConfig::default())
    }

    /// Spawn with an explicit worker count and queue capacity.
    pub fn spawn_with(
        sites: Vec<S>,
        coordinator: C,
        config: ShardedConfig,
    ) -> Result<Self, SimError> {
        if sites.len() < 2 {
            return Err(SimError::TooFewSites {
                sites: sites.len() as u32,
            });
        }
        let workers = config.resolved_workers();
        let trace_shared = Arc::new(TraceShared::new());
        let slots: Vec<SiteSlot<S>> = sites
            .into_iter()
            .enumerate()
            .map(|(i, site)| SiteSlot {
                queue: Mutex::new(QueueInner {
                    cmds: VecDeque::new(),
                    scheduled: false,
                    dead: false,
                }),
                space_cv: Condvar::new(),
                exec: Mutex::new(SiteExec {
                    site: Some(site),
                    meter: MessageMeter::new(),
                    words_reported: 0,
                    batch: None,
                    out: Vec::new(),
                    tracer: SiteTracer::new(Arc::clone(&trace_shared), TraceLane::Site(i as u32)),
                }),
                home: i % workers,
                down: AtomicBool::new(false),
            })
            .collect();
        let pool = Arc::new(Pool {
            sites: slots,
            shards: (0..workers)
                .map(|_| Mutex::new(ShardQueues::default()))
                .collect(),
            ready: AtomicUsize::new(0),
            sched_lock: Mutex::new(()),
            sched_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            pending: Arc::new(Pending::default()),
            queue_cap: config.site_queue_cap.max(1),
            words_shared: AtomicU64::new(0),
            trace_shared,
        });
        let (coord_tx, coord_rx): (Sender<CoordCmd<C>>, Receiver<CoordCmd<C>>) = unbounded();
        let worker_handles = (0..workers)
            .map(|w| {
                let pool = Arc::clone(&pool);
                let coord_tx = coord_tx.clone();
                std::thread::spawn(move || run_worker::<S, C>(w, &pool, &coord_tx))
            })
            .collect();
        let coord_pool = Arc::clone(&pool);
        let coord_handle =
            std::thread::spawn(move || run_coordinator::<S, C>(coordinator, coord_rx, &coord_pool));
        Ok(ShardedCluster {
            pool,
            coord_tx: Some(coord_tx),
            worker_handles,
            coord_handle: Some(coord_handle),
        })
    }

    /// Number of logical sites k.
    pub fn num_sites(&self) -> u32 {
        self.pool.sites.len() as u32
    }

    /// Number of worker threads serving those sites.
    pub fn num_workers(&self) -> usize {
        self.pool.shards.len()
    }

    fn check_site(&self, site: SiteId) -> Result<usize, SimError> {
        if site.index() >= self.pool.sites.len() {
            return Err(SimError::NoSuchSite {
                site: site.0,
                sites: self.pool.sites.len() as u32,
            });
        }
        if self.pool.sites[site.index()].down.load(Ordering::SeqCst) {
            return Err(SimError::SiteDown { site: site.0 });
        }
        Ok(site.index())
    }

    /// Administratively kill a site (fault injection): from now on feeds
    /// to it return [`SimError::SiteDown`] and coordinator down-sends
    /// skip it (dropped unmetered, exactly as [`crate::Cluster::kill_site`]
    /// drops them). Its state is frozen and still returned by
    /// [`ShardedCluster::shutdown`] — an administrative partition, not
    /// the panic path (`QueueInner::dead`), which discards state and
    /// taints the run.
    pub fn kill_site(&self, site: SiteId) -> Result<(), SimError> {
        if site.index() >= self.pool.sites.len() {
            return Err(SimError::NoSuchSite {
                site: site.0,
                sites: self.pool.sites.len() as u32,
            });
        }
        self.pool.sites[site.index()]
            .down
            .store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Fault injection: hold `site`'s next serving worker for `micros`
    /// microseconds (a slow consumer). Asynchronous — the stall queues
    /// behind whatever the site already has; its pending token keeps
    /// `settle()` waiting until the stall has elapsed, which is the
    /// point: quiescence must terminate even with a deliberately slow
    /// site hogging a pool worker.
    pub fn stall_site(&self, site: SiteId, micros: u64) -> Result<(), SimError> {
        let idx = self.check_site(site)?;
        let token = PendingToken::new(&self.pool.pending);
        self.push(idx, ShardCmd::Stall(micros, token))
    }

    fn push(&self, idx: usize, cmd: ShardCmd<S>) -> Result<(), SimError> {
        self.pool
            .push_cmd(idx, cmd)
            .map_err(|_| SimError::WorkerGone { who: "site" })
    }

    /// Deliver an item to a site (asynchronously). Blocks only when the
    /// site's queue is full — backpressure, not unbounded buffering.
    pub fn feed(&self, site: SiteId, item: S::Item) -> Result<(), SimError> {
        let idx = self.check_site(site)?;
        let token = PendingToken::new(&self.pool.pending);
        self.push(idx, ShardCmd::Item(item, token))
    }

    /// Deliver a pre-assigned batch on the transcript-identical
    /// site-at-a-time schedule: consecutive same-site runs go to
    /// [`Site::on_items`] one quiescent step at a time, with the feeder
    /// settling the triggered cascade between steps — answers *and*
    /// metered words are bit-identical to the deterministic runner (see
    /// [`crate::threaded::ThreadedCluster::feed_batch`], which this
    /// mirrors exactly).
    pub fn feed_batch(&self, batch: &[(SiteId, S::Item)]) -> Result<(), SimError> {
        let mut i = 0;
        while i < batch.len() {
            let site = batch[i].0;
            let mut j = i + 1;
            while j < batch.len() && batch[j].0 == site {
                j += 1;
            }
            let idx = self.check_site(site)?;
            let items: Vec<S::Item> = batch[i..j].iter().map(|(_, it)| it.clone()).collect();
            let total = items.len();
            let (ptx, prx) = unbounded();
            self.push(
                idx,
                ShardCmd::Batch {
                    items,
                    progress: ptx,
                    token: PendingToken::new(&self.pool.pending),
                },
            )?;
            let mut consumed_total = 0;
            loop {
                let consumed = prx
                    .recv()
                    .map_err(|_| SimError::WorkerGone { who: "site" })?;
                consumed_total += consumed;
                // The step's ups were enqueued before the progress
                // report, so the counter covers the whole cascade here.
                self.settle();
                if consumed_total >= total {
                    break;
                }
                self.push(idx, ShardCmd::Resume(PendingToken::new(&self.pool.pending)))?;
            }
            i = j;
        }
        Ok(())
    }

    /// Enqueue a whole same-site run for free-running consumption (the
    /// parallel throughput path; transcript not pinned). Returns a
    /// [`RunTicket`] resolving when the run has been fully consumed —
    /// keep a small window of unresolved tickets per site, exactly as
    /// with [`crate::threaded::ThreadedCluster::ingest_run`].
    pub fn ingest_run(&self, site: SiteId, items: Vec<S::Item>) -> Result<RunTicket, SimError> {
        let idx = self.check_site(site)?;
        let (dtx, drx) = unbounded();
        if items.is_empty() {
            let _ = dtx.send(());
            return Ok(RunTicket(drx));
        }
        let token = PendingToken::new(&self.pool.pending);
        self.push(idx, ShardCmd::Run(items, dtx, token))?;
        Ok(RunTicket(drx))
    }

    /// Block until no message is queued or being processed anywhere.
    /// Parks on the shared pending counter — a dead site's drained queue
    /// releases its counts, so this cannot hang on worker death.
    pub fn settle(&self) {
        self.pool.pending.wait_idle();
    }

    /// Deadline-aware [`Self::settle`]: waits for quiescence at most
    /// `deadline`, then degrades to [`SimError::Timeout`] instead of an
    /// unbounded park. The pool remains fully usable — a stalled site may
    /// still drain later, and shutdown waits it out as usual.
    pub fn settle_deadline(&self, deadline: std::time::Duration) -> Result<(), SimError> {
        if self.pool.pending.wait_idle_deadline(deadline) {
            Ok(())
        } else {
            Err(SimError::Timeout {
                waited_ms: deadline.as_millis() as u64,
            })
        }
    }

    /// Run a closure against the coordinator state on its own thread and
    /// return the result. Call [`Self::settle`] first if the query must
    /// observe a quiescent state.
    pub fn with_coordinator<R, F>(&self, f: F) -> Result<R, SimError>
    where
        R: Send + 'static,
        F: FnOnce(&mut C) -> R + Send + 'static,
    {
        let coord_tx = self
            .coord_tx
            .as_ref()
            .ok_or(SimError::WorkerGone { who: "coordinator" })?;
        let (tx, rx) = unbounded();
        coord_tx
            .send(CoordCmd::With(Box::new(move |c: &mut C| {
                let _ = tx.send(f(c));
            })))
            .map_err(|_| SimError::WorkerGone { who: "coordinator" })?;
        rx.recv()
            .map_err(|_| SimError::WorkerGone { who: "coordinator" })
    }

    /// Merge the per-site communication meters into one snapshot. Call
    /// after [`Self::settle`] for a consistent picture.
    pub fn cost(&self) -> MessageMeter {
        let mut total = MessageMeter::new();
        for idx in 0..self.pool.sites.len() {
            total.merge(&self.pool.lock_exec(idx).meter);
        }
        total
    }

    /// Apply a trace configuration. Enabling before the first feed yields
    /// a complete stream: the configuration store happens-before every
    /// worker's next site claim.
    pub fn set_trace(&self, config: TraceConfig) {
        self.pool.trace_shared.configure(config);
    }

    /// The shared trace hub (for driver-lane tracers layered on top).
    pub(crate) fn trace_shared(&self) -> &Arc<TraceShared> {
        &self.pool.trace_shared
    }

    /// Merged, clock-ordered snapshot of every site's trace ring. Taken
    /// under the per-site exec locks like [`ShardedCluster::cost`] — call
    /// after [`ShardedCluster::settle`] for a consistent stream.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut lanes = Vec::with_capacity(self.pool.sites.len());
        for idx in 0..self.pool.sites.len() {
            lanes.push(self.pool.lock_exec(idx).tracer.snapshot());
        }
        merge_snapshots(lanes)
    }

    /// Total trace events lost to ring overwrite across all sites.
    pub fn trace_dropped(&self) -> u64 {
        (0..self.pool.sites.len())
            .map(|idx| self.pool.lock_exec(idx).tracer.dropped())
            .sum()
    }

    /// Cheap, slightly-stale total-words estimate: a relaxed atomic the
    /// workers bump after every serve quantum. Unlike
    /// [`ShardedCluster::cost`] (which takes every per-site exec lock in
    /// turn), this never blocks — it is the flow controller's drift-probe
    /// source, safe to call mid-ingest.
    pub fn words_hint(&self) -> u64 {
        self.pool.words_shared.load(Ordering::Relaxed)
    }

    /// Current cluster-wide backlog: in-flight commands plus undelivered
    /// protocol messages (the quiescence counter `settle` waits on).
    /// The flow controller stalls free-running ingest while this exceeds
    /// its in-flight budget, bounding how stale coordinator feedback can
    /// get when sites outnumber cores.
    pub fn backlog_hint(&self) -> u64 {
        self.pool.pending.count()
    }

    /// Stop the pool and return the final coordinator, sites, and merged
    /// meter. All workers are joined even when some site already died —
    /// the first failure is reported *after* teardown completes.
    pub fn shutdown(mut self) -> Result<(C, Vec<S>, MessageMeter), SimError> {
        self.settle();
        self.pool.stop.store(true, Ordering::SeqCst);
        self.pool.wake_all();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        let coordinator = match self.coord_tx.take() {
            Some(ctx) => {
                let (stx, srx) = unbounded();
                let sent = ctx.send(CoordCmd::Stop(stx)).is_ok();
                drop(ctx);
                sent.then(|| srx.recv().ok()).flatten()
            }
            None => None,
        };
        if let Some(h) = self.coord_handle.take() {
            let _ = h.join();
        }
        let mut first_err: Option<SimError> = None;
        let mut sites = Vec::with_capacity(self.pool.sites.len());
        let mut meter = MessageMeter::new();
        for idx in 0..self.pool.sites.len() {
            let mut exec = self.pool.lock_exec(idx);
            meter.merge(&exec.meter);
            match exec.site.take() {
                Some(site) => sites.push(site),
                None => {
                    first_err.get_or_insert(SimError::WorkerGone { who: "site" });
                }
            }
        }
        if self.pool.failed.load(Ordering::SeqCst) {
            first_err.get_or_insert(SimError::WorkerGone { who: "site" });
        }
        match (coordinator, first_err) {
            (Some(c), None) => Ok((c, sites, meter)),
            (_, Some(e)) => Err(e),
            (None, None) => Err(SimError::WorkerGone { who: "coordinator" }),
        }
    }
}

impl<S, C> Drop for ShardedCluster<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    /// Abandon-path teardown: tell workers to bail between commands,
    /// unblock any producer parked on a full queue, and join everything,
    /// so a cluster that never reached [`ShardedCluster::shutdown`]
    /// cannot leak threads. After a successful `shutdown` the handle
    /// vectors are empty and this is a no-op.
    fn drop(&mut self) {
        self.pool.abort.store(true, Ordering::SeqCst);
        self.pool.stop.store(true, Ordering::SeqCst);
        self.pool.wake_all();
        for slot in &self.pool.sites {
            slot.space_cv.notify_all();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        if let Some(ctx) = self.coord_tx.take() {
            let (stx, _srx) = unbounded();
            let _ = ctx.send(CoordCmd::Stop(stx));
        }
        if let Some(h) = self.coord_handle.take() {
            let _ = h.join();
        }
    }
}

/// Worker main loop: claim ready sites (own shard first, then steal) and
/// serve each to exhaustion; park on the scheduler condvar when no shard
/// has work.
fn run_worker<S, C>(w: usize, pool: &Arc<Pool<S>>, coord_tx: &Sender<CoordCmd<C>>)
where
    S: Site + Send + 'static,
    S::Item: Clone,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
{
    loop {
        if pool.abort.load(Ordering::SeqCst) {
            return;
        }
        if let Some(idx) = pool.next_site(w) {
            serve_site(pool, idx, coord_tx);
            continue;
        }
        let guard = pool.sched_lock.lock().unwrap_or_else(|e| e.into_inner());
        if pool.ready.load(Ordering::SeqCst) > 0 {
            continue;
        }
        if pool.stop.load(Ordering::SeqCst) {
            return;
        }
        // Re-checked at the top of the loop after every wakeup; the
        // notify under `sched_lock` makes the check-then-wait safe.
        let _unused = pool.sched_cv.wait(guard);
    }
}

/// Light commands a worker may process per site claim before yielding to
/// the next ready site. Heavy commands (a whole batched run) always end
/// the claim on their own: serving one site's deep backlog to exhaustion
/// would hold every other ready site's coordinator feedback (threshold
/// updates, poll replies) hostage behind it, and feedback-starved sites
/// over-communicate — the fairness quantum keeps service round-robin at
/// run granularity, which is exactly the interleaving the one-thread-
/// per-site runtime gets from the OS scheduler for free.
const LIGHT_QUANTUM: usize = 256;

/// Serve one site-run: pop the site's queue in FIFO order up to the
/// fairness quantum, handling each command; a still-busy site is
/// requeued at the back of its home shard. A panic in any handler kills
/// *the site*, not the worker.
fn serve_site<S, C>(pool: &Arc<Pool<S>>, idx: usize, coord_tx: &Sender<CoordCmd<C>>)
where
    S: Site,
    S::Item: Clone,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    let mut exec = pool.lock_exec(idx);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        serve_commands(pool, idx, &mut exec, coord_tx)
    }));
    let delta = exec.meter.total_words() - exec.words_reported;
    if delta > 0 {
        exec.words_reported += delta;
        pool.words_shared.fetch_add(delta, Ordering::Relaxed);
    }
    match outcome {
        Ok(Serve::Done) => {}
        Ok(Serve::Requeue { urgent }) => {
            drop(exec);
            pool.enqueue_site(idx, urgent);
        }
        Err(_) => pool.kill_site(idx, &mut exec),
    }
}

/// How one site claim ended.
enum Serve {
    /// Queue drained (site descheduled) or the pool is stopping.
    Done,
    /// Quantum exhausted with commands left: the site stays `scheduled`
    /// and the caller puts it back on its home shard — in the urgent
    /// lane when the next command is coordinator feedback.
    Requeue { urgent: bool },
}

fn serve_commands<S, C>(
    pool: &Pool<S>,
    idx: usize,
    exec: &mut SiteExec<S>,
    coord_tx: &Sender<CoordCmd<C>>,
) -> Serve
where
    S: Site,
    S::Item: Clone,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    let slot = &pool.sites[idx];
    let mut light = 0usize;
    loop {
        if pool.abort.load(Ordering::SeqCst) {
            return Serve::Done;
        }
        let cmd = {
            let mut q = pool.lock_queue(idx);
            match q.cmds.pop_front() {
                Some(cmd) => {
                    slot.space_cv.notify_one();
                    cmd
                }
                None => {
                    // Descheduling under the queue lock closes the race
                    // with a concurrent producer: either it pushed before
                    // we got the lock (we'd have popped it), or it will
                    // see `scheduled == false` and re-enqueue the site.
                    q.scheduled = false;
                    return Serve::Done;
                }
            }
        };
        let heavy = matches!(cmd, ShardCmd::Run(..) | ShardCmd::Batch { .. });
        handle_cmd(pool, idx, exec, cmd, coord_tx);
        light += 1;
        if heavy || light >= LIGHT_QUANTUM {
            let q = pool.lock_queue(idx);
            match q.cmds.front() {
                None => {
                    // Nothing left; fall through to the normal
                    // deschedule on the next pop (cheaper than
                    // duplicating it here).
                    drop(q);
                    light = 0;
                    continue;
                }
                // Still busy: stay `scheduled` (producers must not
                // enqueue a second deque entry) and let the caller
                // requeue us behind the other ready sites — ahead of
                // item work when feedback is waiting.
                Some(next) => {
                    return Serve::Requeue {
                        urgent: matches!(next, ShardCmd::Down(..)),
                    }
                }
            }
        }
    }
}

/// Meter and forward one step's upstream messages. Each message carries
/// its own pending token, created before the input command's token is
/// released, so the counter cannot dip to zero mid-cascade. A dead
/// coordinator just drops the ups (their tokens release with the failed
/// send); `shutdown` reports it.
fn flush_ups<S, C>(
    pool: &Pool<S>,
    id: SiteId,
    out: &mut Vec<S::Up>,
    meter: &mut MessageMeter,
    coord_tx: &Sender<CoordCmd<C>>,
    tracer: &mut SiteTracer,
) where
    S: Site,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    for up in out.drain(..) {
        meter.record_up(up.kind(), up.size_words());
        tracer.record(TraceEventKind::UpHop {
            kind: up.kind(),
            words: up.size_words(),
        });
        let token = PendingToken::new(&pool.pending);
        let _ = coord_tx.send(CoordCmd::Up(id, up, token));
    }
}

/// Run one `on_items` step of the in-progress batch: consume a quiescent
/// prefix, forward any triggered ups, then report progress (after the
/// ups, so the feeder's settle observes the whole cascade).
fn batch_step<S, C>(
    pool: &Pool<S>,
    idx: usize,
    exec: &mut SiteExec<S>,
    coord_tx: &Sender<CoordCmd<C>>,
) where
    S: Site,
    S::Item: Clone,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    let SiteExec {
        site,
        meter,
        batch,
        out,
        tracer,
        ..
    } = exec;
    let (Some(site), Some(cur)) = (site.as_mut(), batch.as_mut()) else {
        debug_assert!(false, "Resume without a live site and batch in progress");
        return;
    };
    debug_assert!(out.is_empty());
    let consumed = site.on_items(&cur.items[cur.off..], out);
    debug_assert!(consumed > 0, "on_items must make progress");
    cur.off += consumed.max(1);
    tracer.record(TraceEventKind::ItemRun {
        items: consumed.max(1) as u64,
    });
    flush_ups::<S, C>(pool, SiteId(idx as u32), out, meter, coord_tx, tracer);
    let finished = cur.off >= cur.items.len();
    // A dropped feeder (it errored out mid-batch) is not this worker's
    // problem; keep serving the queue.
    let _ = cur.progress.send(consumed);
    if finished {
        *batch = None;
    }
}

fn handle_cmd<S, C>(
    pool: &Pool<S>,
    idx: usize,
    exec: &mut SiteExec<S>,
    cmd: ShardCmd<S>,
    coord_tx: &Sender<CoordCmd<C>>,
) where
    S: Site,
    S::Item: Clone,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    let id = SiteId(idx as u32);
    // Each tracked command's token lives to the end of the match arm:
    // outputs are enqueued (and counted) before the input is released.
    match cmd {
        ShardCmd::Item(item, token) => {
            let SiteExec {
                site,
                meter,
                out,
                tracer,
                ..
            } = exec;
            let Some(site) = site.as_mut() else { return };
            site.on_item(item, out);
            tracer.record(TraceEventKind::ItemRun { items: 1 });
            flush_ups::<S, C>(pool, id, out, meter, coord_tx, tracer);
            drop(token);
        }
        ShardCmd::Batch {
            items,
            progress,
            token,
        } => {
            debug_assert!(exec.batch.is_none(), "overlapping batches on one site");
            exec.batch = Some(BatchState {
                items,
                off: 0,
                progress,
            });
            batch_step(pool, idx, exec, coord_tx);
            drop(token);
        }
        ShardCmd::Resume(token) => {
            batch_step(pool, idx, exec, coord_tx);
            drop(token);
        }
        ShardCmd::Run(items, done, token) => {
            run_step(pool, idx, exec, &items, coord_tx);
            // A feeder that dropped its ticket is not waiting; ignore.
            let _ = done.send(());
            drop(token);
        }
        ShardCmd::Down(msg, token) => {
            let SiteExec {
                site,
                meter,
                out,
                tracer,
                ..
            } = exec;
            let Some(site) = site.as_mut() else { return };
            meter.record_down(msg.kind(), msg.size_words());
            tracer.record(TraceEventKind::DownHop {
                kind: msg.kind(),
                words: msg.size_words(),
            });
            site.on_message(&msg, out);
            flush_ups::<S, C>(pool, id, out, meter, coord_tx, tracer);
            drop(token);
        }
        ShardCmd::Stall(micros, token) => {
            std::thread::sleep(std::time::Duration::from_micros(micros));
            drop(token);
        }
    }
}

/// Consume one free-running run to completion, applying coordinator
/// feedback that has already arrived between `on_items` steps (exactly
/// as the threaded runtime does mid-`Run`): Downs from the front of the
/// site's queue are processed immediately, other commands are deferred
/// in order and put back at the front afterwards.
fn run_step<S, C>(
    pool: &Pool<S>,
    idx: usize,
    exec: &mut SiteExec<S>,
    items: &[S::Item],
    coord_tx: &Sender<CoordCmd<C>>,
) where
    S: Site,
    S::Item: Clone,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    let id = SiteId(idx as u32);
    let mut deferred: VecDeque<ShardCmd<S>> = VecDeque::new();
    {
        let SiteExec {
            site,
            meter,
            out,
            tracer,
            ..
        } = exec;
        let Some(site) = site.as_mut() else { return };
        let mut off = 0;
        while off < items.len() {
            debug_assert!(out.is_empty());
            let consumed = site.on_items(&items[off..], out);
            debug_assert!(consumed > 0, "on_items must make progress");
            off += consumed.max(1);
            tracer.record(TraceEventKind::ItemRun {
                items: consumed.max(1) as u64,
            });
            flush_ups::<S, C>(pool, id, out, meter, coord_tx, tracer);
            // Apply already-arrived feedback before consuming further
            // items, as it would land under per-item delivery — without
            // this, feedback-driven protocols run the whole batch
            // against stale thresholds and flood the channel.
            loop {
                let next = {
                    let mut q = pool.lock_queue(idx);
                    match q.cmds.pop_front() {
                        Some(cmd) => {
                            pool.sites[idx].space_cv.notify_one();
                            cmd
                        }
                        None => break,
                    }
                };
                if let ShardCmd::Down(msg, down_token) = next {
                    meter.record_down(msg.kind(), msg.size_words());
                    tracer.record(TraceEventKind::DownHop {
                        kind: msg.kind(),
                        words: msg.size_words(),
                    });
                    site.on_message(&msg, out);
                    flush_ups::<S, C>(pool, id, out, meter, coord_tx, tracer);
                    drop(down_token);
                } else {
                    deferred.push_back(next);
                }
            }
        }
    }
    if !deferred.is_empty() {
        // Replay deferred commands ahead of anything enqueued since; the
        // transient overshoot past `queue_cap` mirrors the threaded
        // runtime's deferred buffer living outside its bounded channel.
        let mut q = pool.lock_queue(idx);
        while let Some(cmd) = deferred.pop_back() {
            q.cmds.push_front(cmd);
        }
    }
}

/// Coordinator thread: the single consumer of upstream traffic, pushing
/// triggered downstream messages back into site queues (each carrying
/// its own pending token).
fn run_coordinator<S, C>(mut coordinator: C, rx: Receiver<CoordCmd<C>>, pool: &Arc<Pool<S>>)
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Down: Send + Sync,
{
    let mut outbox: Outbox<S::Down> = Outbox::new();
    // Staging buffer so the borrow on `outbox` ends before sends (which
    // may block on site-queue backpressure) begin.
    let mut downs: Vec<(Down, S::Down)> = Vec::new();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            CoordCmd::Up(from, up, token) => {
                debug_assert!(outbox.is_empty());
                coordinator.on_message(from, up, &mut outbox);
                downs.extend(outbox.drain());
                for (dest, msg) in downs.drain(..) {
                    let msg = Arc::new(msg);
                    match dest {
                        Down::Unicast(dst) => push_down(pool, dst, &msg),
                        Down::Broadcast => {
                            for i in 0..pool.sites.len() {
                                push_down(pool, SiteId(i as u32), &msg);
                            }
                        }
                    }
                }
                drop(token);
            }
            CoordCmd::With(f) => f(&mut coordinator),
            CoordCmd::Stop(reply) => {
                let _ = reply.send(coordinator);
                return;
            }
        }
    }
}

/// Enqueue one downstream message; a dead site only drops that site's
/// copy (its token releases the pending count with the rejected command).
/// An administratively killed site is skipped before the push: downs are
/// metered at the receiving site, so the dropped hop is unmetered,
/// matching the deterministic cluster's dead-site drop bit for bit.
fn push_down<S>(pool: &Pool<S>, dst: SiteId, msg: &Arc<S::Down>)
where
    S: Site,
{
    if dst.index() >= pool.sites.len() {
        return;
    }
    if pool.sites[dst.index()].down.load(Ordering::SeqCst) {
        return;
    }
    let token = PendingToken::new(&pool.pending);
    let _ = pool.push_cmd(dst.index(), ShardCmd::Down(Arc::clone(msg), token));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::MessageSize;

    fn cfg(workers: usize) -> ShardedConfig {
        ShardedConfig {
            workers: Some(workers),
            ..ShardedConfig::default()
        }
    }

    /// A site that records every item it consumed, in order.
    #[derive(Debug, Default)]
    struct LogSite {
        seen: Vec<u64>,
    }
    #[derive(Debug)]
    struct Inc(u64);
    #[derive(Debug)]
    struct Nudge;

    impl MessageSize for Inc {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "sh/inc"
        }
    }
    impl MessageSize for Nudge {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "sh/nudge"
        }
    }

    impl Site for LogSite {
        type Item = u64;
        type Up = Inc;
        type Down = Nudge;
        fn on_item(&mut self, item: u64, out: &mut Vec<Inc>) {
            self.seen.push(item);
            out.push(Inc(item));
        }
        fn on_message(&mut self, _msg: &Nudge, _out: &mut Vec<Inc>) {}
    }

    #[derive(Debug, Default)]
    struct SumCoord {
        sum: u64,
        ups: u64,
    }
    impl Coordinator for SumCoord {
        type Up = Inc;
        type Down = Nudge;
        fn on_message(&mut self, _from: SiteId, msg: Inc, out: &mut Outbox<Nudge>) {
            self.sum += msg.0;
            self.ups += 1;
            if self.ups.is_multiple_of(5) {
                out.broadcast(Nudge);
            }
        }
    }

    #[test]
    fn sharded_roundtrip_sums_and_meters() {
        let sites = (0..4).map(|_| LogSite::default()).collect();
        let cluster = ShardedCluster::spawn_with(sites, SumCoord::default(), cfg(2)).unwrap();
        assert_eq!(cluster.num_sites(), 4);
        assert_eq!(cluster.num_workers(), 2);
        let mut expect = 0u64;
        for i in 1..=20u64 {
            expect += i;
            cluster.feed(SiteId((i % 4) as u32), i).unwrap();
        }
        cluster.settle();
        let sum = cluster.with_coordinator(|c| c.sum).unwrap();
        assert_eq!(sum, expect);
        let meter = cluster.cost();
        assert_eq!(meter.kind("sh/inc").messages, 20);
        // 4 broadcasts (after ups 5, 10, 15, 20) x 4 sites.
        assert_eq!(meter.kind("sh/nudge").messages, 16);
        let (coord, sites, meter2) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, expect);
        assert_eq!(
            sites
                .iter()
                .map(|s| s.seen.iter().sum::<u64>())
                .sum::<u64>(),
            expect
        );
        assert_eq!(meter2.total_messages(), 36);
    }

    /// The core shard-pool invariant: per-site FIFO order holds when
    /// sites vastly outnumber workers and runs migrate between workers
    /// through stealing.
    #[test]
    fn per_site_fifo_holds_under_stealing() {
        for workers in [1usize, 2, 3] {
            let k = 16u64;
            let per_site = 200u64;
            let sites = (0..k).map(|_| LogSite::default()).collect();
            let cluster =
                ShardedCluster::spawn_with(sites, SumCoord::default(), cfg(workers)).unwrap();
            // Interleave runs and single items across all sites so shard
            // deques stay populated and steals actually happen.
            let mut tickets = Vec::new();
            for round in 0..(per_site / 10) {
                for s in 0..k {
                    let base = s * per_site + round * 10;
                    tickets.push(
                        cluster
                            .ingest_run(SiteId(s as u32), (base..base + 9).collect())
                            .unwrap(),
                    );
                    cluster.feed(SiteId(s as u32), base + 9).unwrap();
                }
            }
            for t in tickets {
                t.wait().unwrap();
            }
            cluster.settle();
            let (_, sites, _) = cluster.shutdown().unwrap();
            for (s, site) in sites.iter().enumerate() {
                let expect: Vec<u64> = (s as u64 * per_site..(s as u64 + 1) * per_site).collect();
                assert_eq!(
                    site.seen, expect,
                    "site {s} order broken with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn feed_batch_matches_per_item_transcript() {
        let stream: Vec<(SiteId, u64)> = (0..500u64)
            .map(|i| (SiteId(((i / 7) % 3) as u32), i))
            .collect();

        let sites = (0..3).map(|_| LogSite::default()).collect();
        let per_item = ShardedCluster::spawn_with(sites, SumCoord::default(), cfg(2)).unwrap();
        for &(site, item) in &stream {
            per_item.feed(site, item).unwrap();
            per_item.settle();
        }
        let (pc, ps, pm) = per_item.shutdown().unwrap();

        let sites = (0..3).map(|_| LogSite::default()).collect();
        let batched = ShardedCluster::spawn_with(sites, SumCoord::default(), cfg(2)).unwrap();
        batched.feed_batch(&stream).unwrap();
        let (bc, bs, bm) = batched.shutdown().unwrap();

        assert_eq!(pc.sum, bc.sum);
        assert_eq!(pc.ups, bc.ups);
        assert_eq!(
            ps.iter().map(|s| s.seen.clone()).collect::<Vec<_>>(),
            bs.iter().map(|s| s.seen.clone()).collect::<Vec<_>>()
        );
        assert_eq!(pm.report(), bm.report());
    }

    // The stalled-slow-site and backpressure-at-cap-4 unit tests that
    // lived here were promoted to matrix scenarios: the stall and
    // queue-cap fault axes in `dtrack-testkit`'s `default_matrix()`
    // (driven by `crates/testkit/tests/fault_axes.rs`) are now the single
    // source of truth for those behaviors, with accuracy and word-budget
    // invariants on top. The panic-death containment tests below stay:
    // panic containment is a property of this pool, not a scenario axis.

    /// Administrative kill: feeds error with `SiteDown`, coordinator
    /// downs skip the site unmetered, and shutdown stays clean (state
    /// frozen, run untainted) — unlike the panic path below.
    #[test]
    fn admin_killed_site_rejects_feeds_and_shutdown_stays_clean() {
        let sites = (0..4).map(|_| LogSite::default()).collect();
        let cluster = ShardedCluster::spawn_with(sites, SumCoord::default(), cfg(2)).unwrap();
        for i in 1..=4u64 {
            cluster.feed(SiteId((i % 4) as u32), i).unwrap();
        }
        cluster.settle();
        cluster.kill_site(SiteId(1)).unwrap();
        assert_eq!(
            cluster.feed(SiteId(1), 9).unwrap_err(),
            SimError::SiteDown { site: 1 }
        );
        assert_eq!(
            cluster.stall_site(SiteId(1), 10).unwrap_err(),
            SimError::SiteDown { site: 1 }
        );
        assert_eq!(
            cluster.kill_site(SiteId(9)).unwrap_err(),
            SimError::NoSuchSite { site: 9, sites: 4 }
        );
        // The 5th up triggers a broadcast; the dead site's copy is
        // dropped unmetered, so only k-1 = 3 nudges are received.
        cluster.feed(SiteId(0), 5).unwrap();
        cluster.settle();
        assert_eq!(cluster.cost().kind("sh/nudge").messages, 3);
        let (coord, sites, _) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, 1 + 2 + 3 + 4 + 5);
        assert_eq!(sites.len(), 4);
    }

    /// An injected stall holds the pending count (settle waits it out and
    /// terminates) without perturbing answers.
    #[test]
    fn stall_holds_quiescence_but_settle_terminates() {
        let sites = (0..2).map(|_| LogSite::default()).collect();
        let cluster = ShardedCluster::spawn_with(sites, SumCoord::default(), cfg(1)).unwrap();
        cluster.stall_site(SiteId(0), 20_000).unwrap();
        let t0 = std::time::Instant::now();
        cluster.settle();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        cluster.feed(SiteId(0), 1).unwrap();
        cluster.settle();
        let (coord, _, _) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, 1);
    }

    #[test]
    fn spawn_requires_two_sites() {
        let err = ShardedCluster::spawn(vec![LogSite::default()], SumCoord::default())
            .err()
            .unwrap();
        assert_eq!(err, SimError::TooFewSites { sites: 1 });
    }

    #[test]
    fn feed_unknown_site_errors() {
        let sites = (0..2).map(|_| LogSite::default()).collect();
        let cluster = ShardedCluster::spawn_with(sites, SumCoord::default(), cfg(2)).unwrap();
        let err = cluster.feed(SiteId(5), 1).unwrap_err();
        assert_eq!(err, SimError::NoSuchSite { site: 5, sites: 2 });
        cluster.shutdown().unwrap();
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let sites = (0..16).map(|_| LogSite::default()).collect();
        let cluster = ShardedCluster::spawn_with(sites, SumCoord::default(), cfg(3)).unwrap();
        for i in 0..200u64 {
            cluster.feed(SiteId((i % 16) as u32), i).unwrap();
        }
        drop(cluster);
    }

    /// A site that panics on a poison value — the stand-in for a site
    /// dying mid-run.
    #[derive(Debug, Default)]
    struct PoisonSite;
    const POISON: u64 = u64::MAX;

    impl Site for PoisonSite {
        type Item = u64;
        type Up = Inc;
        type Down = Nudge;
        fn on_item(&mut self, item: u64, out: &mut Vec<Inc>) {
            assert!(item != POISON, "poisoned (intentional test panic)");
            out.push(Inc(item));
        }
        fn on_message(&mut self, _msg: &Nudge, _out: &mut Vec<Inc>) {}
    }

    /// Worker death surfaces as a `RunTicket::wait` error, `settle`
    /// still terminates, the pool keeps serving *other* sites, and
    /// `shutdown` reports the failure.
    #[test]
    fn site_death_surfaces_without_killing_the_pool() {
        let sites = (0..4).map(|_| PoisonSite).collect();
        let cluster = ShardedCluster::spawn_with(sites, SumCoord::default(), cfg(2)).unwrap();
        let ticket = cluster
            .ingest_run(SiteId(0), vec![1, 2, POISON, 3])
            .unwrap();
        assert_eq!(
            ticket.wait().unwrap_err(),
            SimError::WorkerGone { who: "site" }
        );
        // The dead site rejects further work...
        cluster.settle();
        let mut saw_error = false;
        for i in 0..10_000u64 {
            if cluster.feed(SiteId(0), i).is_err() {
                saw_error = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(saw_error, "dead site never surfaced as a feed error");
        // ...while the surviving sites keep ingesting on the same pool.
        cluster
            .ingest_run(SiteId(1), (0..100).collect())
            .unwrap()
            .wait()
            .unwrap();
        cluster.feed(SiteId(2), 7).unwrap();
        cluster.settle();
        assert!(cluster.with_coordinator(|c| c.ups).unwrap() >= 103);
        let err = cluster.shutdown().unwrap_err();
        assert_eq!(err, SimError::WorkerGone { who: "site" });
    }

    /// Queued-but-unconsumed runs on a site that dies release their
    /// pending counts and resolve their tickets as errors — `settle`
    /// cannot hang on a dead site's backlog.
    #[test]
    fn queued_runs_behind_a_death_release_and_error() {
        let sites = (0..2).map(|_| PoisonSite).collect();
        let config = ShardedConfig {
            workers: Some(1),
            site_queue_cap: 64,
        };
        let cluster = ShardedCluster::spawn_with(sites, SumCoord::default(), config).unwrap();
        let poison = cluster.ingest_run(SiteId(0), vec![1, POISON]).unwrap();
        let mut behind = Vec::new();
        for _ in 0..8 {
            behind.push(cluster.ingest_run(SiteId(0), vec![2, 3]).unwrap());
        }
        assert!(poison.wait().is_err());
        // Runs queued behind the poison either got in before the death
        // (possible when the feeder raced ahead) or error; none hang.
        for t in behind {
            let _ = t.wait();
        }
        cluster.settle();
        assert_eq!(
            cluster.shutdown().unwrap_err(),
            SimError::WorkerGone { who: "site" }
        );
    }

    #[test]
    fn ingest_run_ticket_resolves_for_empty() {
        let sites = (0..2).map(|_| LogSite::default()).collect();
        let cluster = ShardedCluster::spawn_with(sites, SumCoord::default(), cfg(1)).unwrap();
        cluster
            .ingest_run(SiteId(0), Vec::new())
            .unwrap()
            .wait()
            .unwrap();
        cluster.shutdown().unwrap();
    }

    #[test]
    fn more_workers_than_sites_is_fine() {
        let sites = (0..2).map(|_| LogSite::default()).collect();
        let cluster = ShardedCluster::spawn_with(sites, SumCoord::default(), cfg(8)).unwrap();
        for i in 0..100u64 {
            cluster.feed(SiteId((i % 2) as u32), i).unwrap();
        }
        cluster.settle();
        assert_eq!(cluster.with_coordinator(|c| c.ups).unwrap(), 100);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn config_resolves_workers() {
        assert_eq!(cfg(3).resolved_workers(), 3);
        assert!(ShardedConfig::default().resolved_workers() >= 1);
        assert_eq!(
            ShardedConfig {
                workers: Some(0),
                ..ShardedConfig::default()
            }
            .resolved_workers(),
            1
        );
    }

    /// Seeded pseudo-random stress: random interleavings of items, runs,
    /// and settles across many sites on a small pool; per-site order and
    /// coordinator totals must come out exact.
    #[test]
    fn randomized_stress_keeps_order_and_totals() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let k = 12u64;
        let sites = (0..k).map(|_| LogSite::default()).collect();
        let cluster = ShardedCluster::spawn_with(sites, SumCoord::default(), cfg(3)).unwrap();
        let mut cursors = vec![0u64; k as usize];
        let mut fed = 0u64;
        for _ in 0..400 {
            let s = (next() % k) as usize;
            let base = cursors[s];
            match next() % 3 {
                0 => {
                    cluster.feed(SiteId(s as u32), base).unwrap();
                    cursors[s] += 1;
                    fed += 1;
                }
                1 => {
                    let len = 1 + next() % 16;
                    let ticket = cluster
                        .ingest_run(SiteId(s as u32), (base..base + len).collect())
                        .unwrap();
                    drop(ticket);
                    cursors[s] += len;
                    fed += len;
                }
                _ => cluster.settle(),
            }
        }
        cluster.settle();
        let (coord, sites, _) = cluster.shutdown().unwrap();
        assert_eq!(coord.ups, fed);
        for (s, site) in sites.iter().enumerate() {
            let expect: Vec<u64> = (0..cursors[s]).collect();
            assert_eq!(site.seen, expect, "site {s} out of order");
        }
    }
}
