//! Threaded runtime: the same protocols on real OS threads connected by
//! `crossbeam` channels.
//!
//! One thread per site plus one coordinator thread. Every hop is metered
//! exactly as in the deterministic [`crate::Cluster`]. Unlike the
//! deterministic runner, arrivals at *different* sites may interleave with
//! in-flight communication; [`ThreadedCluster::settle`] waits until the
//! system is quiescent, which is when queries are meaningful.
//!
//! This runtime exists to demonstrate that the protocol implementations are
//! genuinely message-driven (no hidden shared state): the exact same `Site`
//! and `Coordinator` state machines run under both runtimes, and integration
//! tests assert they produce identical answers and identical word counts on
//! identical single-site-at-a-time schedules.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::error::SimError;
use crate::meter::MessageMeter;
use crate::proto::{Coordinator, Down, MessageSize, Outbox, Site, SiteId};

enum SiteCmd<S: Site> {
    Item(S::Item),
    Down(Arc<S::Down>),
    Stop(Sender<S>),
}

enum CoordCmd<C: Coordinator> {
    Up(SiteId, C::Up),
    With(Box<dyn FnOnce(&mut C) + Send>),
    Stop(Sender<C>),
}

/// Shared bookkeeping for quiescence detection: the number of messages that
/// are queued or currently being processed. A handler increments the counter
/// for each output *before* decrementing for its input, so the counter only
/// reaches zero when the whole cascade has finished.
#[derive(Debug, Default)]
struct Pending(AtomicU64);

impl Pending {
    fn inc(&self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
    fn dec(&self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
    fn is_idle(&self) -> bool {
        self.0.load(Ordering::SeqCst) == 0
    }
}

/// A cluster running on OS threads.
pub struct ThreadedCluster<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send,
    S::Up: Send,
    S::Down: Send + Sync,
{
    site_txs: Vec<Sender<SiteCmd<S>>>,
    coord_tx: Sender<CoordCmd<C>>,
    site_handles: Vec<JoinHandle<()>>,
    coord_handle: Option<JoinHandle<()>>,
    pending: Arc<Pending>,
    meter: Arc<Mutex<MessageMeter>>,
}

impl<S, C> ThreadedCluster<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send,
    S::Up: Send,
    S::Down: Send + Sync,
{
    /// Spawn one thread per site plus a coordinator thread.
    pub fn spawn(sites: Vec<S>, coordinator: C) -> Result<Self, SimError> {
        if sites.len() < 2 {
            return Err(SimError::TooFewSites {
                sites: sites.len() as u32,
            });
        }
        let pending = Arc::new(Pending::default());
        let meter = Arc::new(Mutex::new(MessageMeter::new()));
        let (coord_tx, coord_rx): (Sender<CoordCmd<C>>, Receiver<CoordCmd<C>>) = unbounded();

        let mut site_txs = Vec::with_capacity(sites.len());
        let mut site_handles = Vec::with_capacity(sites.len());
        for (i, site) in sites.into_iter().enumerate() {
            let (tx, rx) = unbounded::<SiteCmd<S>>();
            site_txs.push(tx);
            let coord_tx = coord_tx.clone();
            let pending = Arc::clone(&pending);
            let meter = Arc::clone(&meter);
            let id = SiteId(i as u32);
            site_handles.push(std::thread::spawn(move || {
                run_site(site, id, rx, coord_tx, pending, meter)
            }));
        }

        let coord_pending = Arc::clone(&pending);
        let coord_meter = Arc::clone(&meter);
        let txs = site_txs.clone();
        let coord_handle = std::thread::spawn(move || {
            run_coordinator(coordinator, coord_rx, txs, coord_pending, coord_meter)
        });

        Ok(ThreadedCluster {
            site_txs,
            coord_tx,
            site_handles,
            coord_handle: Some(coord_handle),
            pending,
            meter,
        })
    }

    /// Number of sites k.
    pub fn num_sites(&self) -> u32 {
        self.site_txs.len() as u32
    }

    /// Deliver an item to a site (asynchronously).
    pub fn feed(&self, site: SiteId, item: S::Item) -> Result<(), SimError> {
        let tx = self
            .site_txs
            .get(site.index())
            .ok_or(SimError::NoSuchSite {
                site: site.0,
                sites: self.site_txs.len() as u32,
            })?;
        self.pending.inc();
        tx.send(SiteCmd::Item(item))
            .map_err(|_| SimError::WorkerGone { who: "site" })
    }

    /// Block until no message is queued or being processed anywhere.
    pub fn settle(&self) {
        while !self.pending.is_idle() {
            std::thread::yield_now();
        }
    }

    /// Run a closure against the coordinator state on its own thread and
    /// return the result. Call [`Self::settle`] first if the query must
    /// observe a quiescent state.
    pub fn with_coordinator<R, F>(&self, f: F) -> Result<R, SimError>
    where
        R: Send + 'static,
        F: FnOnce(&mut C) -> R + Send + 'static,
    {
        let (tx, rx) = unbounded();
        self.coord_tx
            .send(CoordCmd::With(Box::new(move |c: &mut C| {
                // Receiver outlives the closure; ignore a dropped receiver.
                let _ = tx.send(f(c));
            })))
            .map_err(|_| SimError::WorkerGone { who: "coordinator" })?;
        rx.recv()
            .map_err(|_| SimError::WorkerGone { who: "coordinator" })
    }

    /// Snapshot the communication meter.
    pub fn cost(&self) -> MessageMeter {
        self.meter.lock().clone()
    }

    /// Stop all threads and return the final coordinator, sites, and meter.
    pub fn shutdown(mut self) -> Result<(C, Vec<S>, MessageMeter), SimError> {
        self.settle();
        let mut sites = Vec::with_capacity(self.site_txs.len());
        for tx in &self.site_txs {
            let (stx, srx) = unbounded();
            tx.send(SiteCmd::Stop(stx))
                .map_err(|_| SimError::WorkerGone { who: "site" })?;
            sites.push(
                srx.recv()
                    .map_err(|_| SimError::WorkerGone { who: "site" })?,
            );
        }
        let (ctx, crx) = unbounded();
        self.coord_tx
            .send(CoordCmd::Stop(ctx))
            .map_err(|_| SimError::WorkerGone { who: "coordinator" })?;
        let coordinator = crx
            .recv()
            .map_err(|_| SimError::WorkerGone { who: "coordinator" })?;
        for h in self.site_handles.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.coord_handle.take() {
            let _ = h.join();
        }
        let meter = self.meter.lock().clone();
        Ok((coordinator, sites, meter))
    }
}

fn run_site<S, C>(
    mut site: S,
    id: SiteId,
    rx: Receiver<SiteCmd<S>>,
    coord_tx: Sender<CoordCmd<C>>,
    pending: Arc<Pending>,
    meter: Arc<Mutex<MessageMeter>>,
) where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
{
    let mut out: Vec<S::Up> = Vec::new();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            SiteCmd::Item(item) => {
                site.on_item(item, &mut out);
            }
            SiteCmd::Down(msg) => {
                {
                    let mut m = meter.lock();
                    m.record_down(msg.kind(), msg.size_words());
                }
                site.on_message(&msg, &mut out);
            }
            SiteCmd::Stop(reply) => {
                let _ = reply.send(site);
                return;
            }
        }
        for up in out.drain(..) {
            {
                let mut m = meter.lock();
                m.record_up(up.kind(), up.size_words());
            }
            pending.inc();
            if coord_tx.send(CoordCmd::Up(id, up)).is_err() {
                pending.dec();
                return;
            }
        }
        // The input message is fully handled only after its outputs are
        // enqueued; decrement last so `pending` can't dip to zero early.
        pending.dec();
    }
}

fn run_coordinator<S, C>(
    mut coordinator: C,
    rx: Receiver<CoordCmd<C>>,
    site_txs: Vec<Sender<SiteCmd<S>>>,
    pending: Arc<Pending>,
    _meter: Arc<Mutex<MessageMeter>>,
) where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Down: Send + Sync,
{
    let mut outbox: Outbox<S::Down> = Outbox::new();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            CoordCmd::Up(from, up) => {
                coordinator.on_message(from, up, &mut outbox);
                let downs: Vec<(Down, S::Down)> = outbox.drain().collect();
                for (dest, msg) in downs {
                    let msg = Arc::new(msg);
                    match dest {
                        Down::Unicast(dst) => {
                            if let Some(tx) = site_txs.get(dst.index()) {
                                pending.inc();
                                if tx.send(SiteCmd::Down(Arc::clone(&msg))).is_err() {
                                    pending.dec();
                                }
                            }
                        }
                        Down::Broadcast => {
                            for tx in &site_txs {
                                pending.inc();
                                if tx.send(SiteCmd::Down(Arc::clone(&msg))).is_err() {
                                    pending.dec();
                                }
                            }
                        }
                    }
                }
                pending.dec();
            }
            CoordCmd::With(f) => f(&mut coordinator),
            CoordCmd::Stop(reply) => {
                let _ = reply.send(coordinator);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct CountSite {
        local: u64,
    }
    #[derive(Debug)]
    struct Inc(u64);
    #[derive(Debug)]
    struct Nudge;

    impl MessageSize for Inc {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "t/inc"
        }
    }
    impl MessageSize for Nudge {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "t/nudge"
        }
    }

    impl Site for CountSite {
        type Item = u64;
        type Up = Inc;
        type Down = Nudge;
        fn on_item(&mut self, item: u64, out: &mut Vec<Inc>) {
            self.local += item;
            out.push(Inc(item));
        }
        fn on_message(&mut self, _msg: &Nudge, _out: &mut Vec<Inc>) {}
    }

    #[derive(Debug, Default)]
    struct SumCoord {
        sum: u64,
        ups: u64,
    }
    impl Coordinator for SumCoord {
        type Up = Inc;
        type Down = Nudge;
        fn on_message(&mut self, _from: SiteId, msg: Inc, out: &mut Outbox<Nudge>) {
            self.sum += msg.0;
            self.ups += 1;
            if self.ups.is_multiple_of(5) {
                out.broadcast(Nudge);
            }
        }
    }

    #[test]
    fn threaded_roundtrip_sums_and_meters() {
        let sites = (0..4).map(|_| CountSite::default()).collect();
        let cluster = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        let mut expect = 0u64;
        for i in 1..=20u64 {
            expect += i;
            cluster.feed(SiteId((i % 4) as u32), i).unwrap();
        }
        cluster.settle();
        let sum = cluster.with_coordinator(|c| c.sum).unwrap();
        assert_eq!(sum, expect);
        let meter = cluster.cost();
        assert_eq!(meter.kind("t/inc").messages, 20);
        // 4 broadcasts (after ups 5, 10, 15, 20) x 4 sites.
        assert_eq!(meter.kind("t/nudge").messages, 16);
        let (coord, sites, meter2) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, expect);
        assert_eq!(sites.iter().map(|s| s.local).sum::<u64>(), expect);
        assert_eq!(meter2.total_messages(), 36);
    }

    #[test]
    fn spawn_requires_two_sites() {
        let err = ThreadedCluster::spawn(vec![CountSite::default()], SumCoord::default())
            .err()
            .unwrap();
        assert_eq!(err, SimError::TooFewSites { sites: 1 });
    }

    #[test]
    fn feed_unknown_site_errors() {
        let sites = (0..2).map(|_| CountSite::default()).collect();
        let cluster = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        let err = cluster.feed(SiteId(5), 1).unwrap_err();
        assert_eq!(err, SimError::NoSuchSite { site: 5, sites: 2 });
        cluster.shutdown().unwrap();
    }
}
