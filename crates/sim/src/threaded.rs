//! Threaded runtime: the same protocols on real OS threads connected by
//! `crossbeam` channels.
//!
//! One thread per site plus one coordinator thread. Every hop is metered
//! exactly as in the deterministic [`crate::Cluster`]. Unlike the
//! deterministic runner, arrivals at *different* sites may interleave with
//! in-flight communication; [`ThreadedCluster::settle`] waits until the
//! system is quiescent, which is when queries are meaningful.
//!
//! This runtime exists to prove the protocol implementations are genuinely
//! message-driven (no hidden shared state) *and* to serve as the parallel
//! ingest engine: the exact same `Site` and `Coordinator` state machines
//! run under both runtimes, and the testkit asserts they produce identical
//! answers and identical word counts on identical site-at-a-time schedules.
//!
//! ## Design
//!
//! * **Bounded site queues.** Each site's command channel holds at most
//!   [`SITE_QUEUE_CAP`] entries; a faster producer (the feeder, or the
//!   coordinator broadcasting) blocks instead of growing an unbounded
//!   queue. The coordinator's queue stays unbounded on purpose: upstream
//!   traffic is protocol-bounded (O(k/ε·log n) words for the whole
//!   stream), and an unbounded coordinator inbox breaks the only send
//!   cycle in the system (site → coordinator → site), so the bounded site
//!   queues cannot deadlock — a site never blocks sending up, therefore it
//!   always drains its own queue, therefore blocked down-sends and feeds
//!   always make progress.
//! * **Event-based quiescence.** A single atomic counter tracks messages
//!   that are queued or in flight; [`ThreadedCluster::settle`] parks on a
//!   condvar that the last decrement signals — no spinning.
//! * **Token-tracked pending counts.** Every tracked command carries a
//!   [`PendingToken`] that increments the counter on creation and
//!   decrements it on drop. Handlers hold the token while they run and
//!   emit outputs (which carry their own tokens) before releasing it, so
//!   the counter only reaches zero when a whole cascade has finished. The
//!   token makes the counter leak-proof by construction: a send that fails
//!   (the command comes back inside the error), a command destroyed in a
//!   disconnected queue, and a handler that panics all release their count
//!   on the normal drop path. The old runtime got exactly this wrong —
//!   `feed` incremented before a send that could fail and never undid it,
//!   wedging `settle()` forever.
//! * **Per-thread meters.** Each site thread owns a private
//!   [`MessageMeter`] (upstream hops metered at the sending site,
//!   downstream hops at the receiving site, so every hop is counted once).
//!   Nothing is shared on the per-hop path; [`ThreadedCluster::cost`] and
//!   [`ThreadedCluster::shutdown`] collect and [`MessageMeter::merge`] the
//!   thread-local meters on demand.
//! * **Batched delivery.** [`ThreadedCluster::feed_batch`] mirrors
//!   [`crate::Cluster::feed_batch`]: same-site runs are shipped as one
//!   command and consumed through [`Site::on_items`], with the feeder
//!   settling the triggered cascade between quiescent runs — the
//!   transcript stays bit-identical to per-item delivery on a
//!   site-at-a-time schedule. [`ThreadedCluster::ingest_run`] is the
//!   free-running variant for parallel throughput: whole runs are consumed
//!   without global synchronization, keeping every site thread busy.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use dtrack_trace::{
    merge_snapshots, SiteTracer, TraceConfig, TraceEvent, TraceEventKind, TraceLane, TraceShared,
};

use crate::error::SimError;
use crate::meter::MessageMeter;
use crate::proto::{Coordinator, Down, MessageSize, Outbox, Site, SiteId};

/// Default capacity of each site's command queue. Deep enough that the
/// feeder and the coordinator rarely contend on a healthy run, shallow
/// enough that a stalled site exerts backpressure (a blocked `feed`)
/// instead of accumulating unbounded memory. Both parallel backends
/// (threaded and sharded) share this default; override it per cluster
/// with [`ThreadedCluster::spawn_with_cap`], the sharded runtime's
/// config, or `TrackerBuilder::site_queue_cap`.
pub const SITE_QUEUE_CAP: usize = 1024;

/// Shared bookkeeping for quiescence detection: the number of messages
/// that are queued or currently being processed, plus the condvar
/// [`ThreadedCluster::settle`] parks on. Shared with the sharded runtime
/// (`crate::sharded`), which reuses the same token accounting.
#[derive(Debug, Default)]
pub(crate) struct Pending {
    count: AtomicU64,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl Pending {
    fn inc(&self) {
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    fn dec(&self) {
        let prev = self.count.fetch_sub(1, Ordering::SeqCst);
        // An unmatched decrement used to wrap to u64::MAX and silently
        // wedge quiescence detection; fail loudly instead.
        assert!(
            prev != 0,
            "Pending::dec without a matching inc — quiescence counter underflow"
        );
        if prev == 1 {
            // Take the lock before notifying so a waiter that has checked
            // the counter but not yet parked cannot miss the wakeup.
            let _guard = self.idle_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.idle_cv.notify_all();
        }
    }

    /// Current in-flight count (commands plus undelivered protocol
    /// messages) — the free-running flow controller's backlog signal.
    pub(crate) fn count(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    pub(crate) fn wait_idle(&self) {
        if self.count.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut guard = self.idle_lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.count.load(Ordering::SeqCst) != 0 {
            guard = self.idle_cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Deadline-aware [`Pending::wait_idle`]: `true` when the system went
    /// quiescent, `false` when the deadline expired first (the count may
    /// still drain later — nothing is cancelled).
    pub(crate) fn wait_idle_deadline(&self, deadline: Duration) -> bool {
        if self.count.load(Ordering::SeqCst) == 0 {
            return true;
        }
        let start = Instant::now();
        let mut guard = self.idle_lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.count.load(Ordering::SeqCst) != 0 {
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return false;
            }
            let (g, _) = self
                .idle_cv
                .wait_timeout(guard, deadline - elapsed)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
        true
    }
}

/// One unit of the pending count, held by exactly one in-flight command.
/// Created at send time (increments), released on drop (decrements) — on
/// the success path after the handler finishes, but equally when a send
/// fails and returns the command, when a disconnected queue destroys its
/// backlog, or when a handler panics and unwinds.
pub(crate) struct PendingToken(Arc<Pending>);

impl PendingToken {
    pub(crate) fn new(pending: &Arc<Pending>) -> Self {
        pending.inc();
        PendingToken(Arc::clone(pending))
    }
}

impl Drop for PendingToken {
    fn drop(&mut self) {
        self.0.dec();
    }
}

enum SiteCmd<S: Site> {
    /// One item; the per-item slow path.
    Item(S::Item, PendingToken),
    /// A same-site run consumed through [`Site::on_items`] one quiescent
    /// step at a time: the site reports each step's progress and waits for
    /// a `Resume` (sent by the feeder after settling the triggered
    /// cascade) before continuing.
    Batch {
        items: Vec<S::Item>,
        progress: Sender<usize>,
        token: PendingToken,
    },
    /// Continue the in-progress batch with the next quiescent step.
    Resume(PendingToken),
    /// A same-site run consumed to completion without global
    /// synchronization (free-running parallel ingest). `done` fires when
    /// the run has been fully consumed.
    Run(Vec<S::Item>, Sender<()>, PendingToken),
    /// A downstream protocol message from the coordinator.
    Down(Arc<S::Down>, PendingToken),
    /// Fault injection: hold this site's thread for the given number of
    /// microseconds (a slow consumer). The token keeps the system
    /// non-quiescent for the duration, so `settle()` observes the stall —
    /// and proves it terminates anyway.
    Stall(u64, PendingToken),
    /// Snapshot this site thread's meter.
    Meter(Sender<MessageMeter>),
    /// Snapshot this site thread's trace ring (events, dropped count).
    TraceSnap(Sender<(Vec<TraceEvent>, u64)>),
    /// Hand back the site state machine and meter, then exit.
    Stop(Sender<(S, MessageMeter)>),
}

enum CoordCmd<C: Coordinator> {
    Up(SiteId, C::Up, PendingToken),
    With(Box<dyn FnOnce(&mut C) + Send>),
    Stop(Sender<C>),
}

/// Completion handle for a free-running [`ThreadedCluster::ingest_run`].
#[must_use = "hold the ticket and wait on it to bound in-flight items per site"]
pub struct RunTicket(pub(crate) Receiver<()>);

impl RunTicket {
    /// Block until the run has been fully consumed.
    ///
    /// Returns [`SimError::WorkerGone`] when the consuming site died
    /// before finishing the run (its `done` sender is destroyed with the
    /// unwinding thread): the items were *not* all ingested, and callers
    /// that used to treat this as normal completion silently dropped
    /// data. The disconnect still resolves immediately — a dead worker
    /// can never hang the feeder.
    pub fn wait(self) -> Result<(), SimError> {
        self.0
            .recv()
            .map_err(|_| SimError::WorkerGone { who: "site" })
    }

    /// Deadline-aware [`RunTicket::wait`]: a run still unconsumed after
    /// `deadline` (a stalled or wedged site) returns
    /// [`SimError::Timeout`] instead of parking forever. The ticket is
    /// consumed either way; the run itself is not cancelled.
    pub fn wait_timeout(self, deadline: Duration) -> Result<(), SimError> {
        self.0.recv_timeout(deadline).map_err(|e| match e {
            RecvTimeoutError::Timeout => SimError::Timeout {
                waited_ms: deadline.as_millis() as u64,
            },
            RecvTimeoutError::Disconnected => SimError::WorkerGone { who: "site" },
        })
    }
}

/// A cluster running on OS threads: one per site plus a coordinator.
pub struct ThreadedCluster<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    site_txs: Vec<Sender<SiteCmd<S>>>,
    coord_tx: Option<Sender<CoordCmd<C>>>,
    site_handles: Vec<JoinHandle<()>>,
    coord_handle: Option<JoinHandle<()>>,
    pending: Arc<Pending>,
    /// Administrative fault-injection mask, shared with the coordinator
    /// thread: a `true` entry marks a site killed by
    /// [`ThreadedCluster::kill_site`] — feeds to it error with
    /// [`SimError::SiteDown`] and the coordinator's down-sends skip it
    /// (unmetered: downs are metered at the receiving site, and nothing
    /// is received). The thread itself stays alive with frozen state so
    /// shutdown remains clean.
    dead: Arc<Vec<AtomicBool>>,
    /// Relaxed running total of metered words, bumped by each site thread
    /// after every command it serves. Read by [`ThreadedCluster::words_hint`]
    /// so flow-control probes never queue behind in-flight runs the way a
    /// full [`ThreadedCluster::cost`] snapshot does.
    words_shared: Arc<AtomicU64>,
    /// Shared trace configuration (enabled flag, ring capacity, logical
    /// clock) every worker's [`SiteTracer`] reads; off by default so the
    /// untraced hot path pays one relaxed load and branch per event site.
    trace_shared: Arc<TraceShared>,
}

impl<S, C> ThreadedCluster<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    /// Spawn one thread per site plus a coordinator thread, with the
    /// default site-queue capacity ([`SITE_QUEUE_CAP`]).
    pub fn spawn(sites: Vec<S>, coordinator: C) -> Result<Self, SimError> {
        Self::spawn_with_cap(sites, coordinator, SITE_QUEUE_CAP)
    }

    /// [`ThreadedCluster::spawn`] with an explicit per-site queue
    /// capacity. Deeper queues absorb burstier feeders before `feed`
    /// blocks; shallower queues bound memory and feedback staleness more
    /// tightly. A capacity of 0 is clamped to 1 (a rendezvous queue would
    /// deadlock `feed_batch`'s step protocol).
    pub fn spawn_with_cap(
        sites: Vec<S>,
        coordinator: C,
        queue_cap: usize,
    ) -> Result<Self, SimError> {
        if sites.len() < 2 {
            return Err(SimError::TooFewSites {
                sites: sites.len() as u32,
            });
        }
        let queue_cap = queue_cap.max(1);
        let pending = Arc::new(Pending::default());
        let (coord_tx, coord_rx): (Sender<CoordCmd<C>>, Receiver<CoordCmd<C>>) = unbounded();

        let words_shared = Arc::new(AtomicU64::new(0));
        let trace_shared = Arc::new(TraceShared::new());
        let mut site_txs = Vec::with_capacity(sites.len());
        let mut site_handles = Vec::with_capacity(sites.len());
        for (i, site) in sites.into_iter().enumerate() {
            let (tx, rx) = bounded::<SiteCmd<S>>(queue_cap);
            site_txs.push(tx);
            let coord_tx = coord_tx.clone();
            let pending = Arc::clone(&pending);
            let words_shared = Arc::clone(&words_shared);
            let id = SiteId(i as u32);
            let tracer = SiteTracer::new(Arc::clone(&trace_shared), TraceLane::Site(i as u32));
            site_handles.push(std::thread::spawn(move || {
                run_site(site, id, rx, coord_tx, pending, words_shared, tracer)
            }));
        }

        let dead: Arc<Vec<AtomicBool>> = Arc::new(
            (0..site_txs.len())
                .map(|_| AtomicBool::new(false))
                .collect(),
        );
        let coord_pending = Arc::clone(&pending);
        let coord_dead = Arc::clone(&dead);
        let txs = site_txs.clone();
        let coord_handle = std::thread::spawn(move || {
            run_coordinator(coordinator, coord_rx, txs, coord_pending, coord_dead)
        });

        Ok(ThreadedCluster {
            site_txs,
            coord_tx: Some(coord_tx),
            site_handles,
            coord_handle: Some(coord_handle),
            pending,
            dead,
            words_shared,
            trace_shared,
        })
    }

    /// Number of sites k.
    pub fn num_sites(&self) -> u32 {
        self.site_txs.len() as u32
    }

    fn site_tx(&self, site: SiteId) -> Result<&Sender<SiteCmd<S>>, SimError> {
        if self
            .dead
            .get(site.index())
            .is_some_and(|d| d.load(Ordering::SeqCst))
        {
            return Err(SimError::SiteDown { site: site.0 });
        }
        self.site_txs.get(site.index()).ok_or(SimError::NoSuchSite {
            site: site.0,
            sites: self.site_txs.len() as u32,
        })
    }

    /// Administratively kill a site (fault injection): from now on feeds
    /// to it return [`SimError::SiteDown`] and coordinator down-sends skip
    /// it (dropped unmetered, exactly as [`crate::Cluster::kill_site`]
    /// drops them). The site's thread stays alive with frozen state, so
    /// [`ThreadedCluster::shutdown`] still joins it cleanly and returns
    /// its state — an administrative partition, not a crash.
    pub fn kill_site(&self, site: SiteId) -> Result<(), SimError> {
        let k = self.site_txs.len() as u32;
        let slot = self.dead.get(site.index()).ok_or(SimError::NoSuchSite {
            site: site.0,
            sites: k,
        })?;
        slot.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Fault injection: hold `site`'s thread for `micros` microseconds (a
    /// slow consumer). Asynchronous — the stall queues behind whatever the
    /// site is already doing; its pending token keeps `settle()` waiting
    /// until the stall has elapsed, which is the point: quiescence must
    /// terminate even with a deliberately slow site.
    pub fn stall_site(&self, site: SiteId, micros: u64) -> Result<(), SimError> {
        let tx = self.site_tx(site)?;
        let token = PendingToken::new(&self.pending);
        tx.send(SiteCmd::Stall(micros, token))
            .map_err(|_| SimError::WorkerGone { who: "site" })
    }

    /// Deliver an item to a site (asynchronously). Blocks only when the
    /// site's queue is full — backpressure, not unbounded buffering.
    pub fn feed(&self, site: SiteId, item: S::Item) -> Result<(), SimError> {
        let tx = self.site_tx(site)?;
        let token = PendingToken::new(&self.pending);
        // On failure the command (token included) comes back inside the
        // error and is dropped with it, releasing the pending count — the
        // counter cannot leak on this path.
        tx.send(SiteCmd::Item(item, token))
            .map_err(|_| SimError::WorkerGone { who: "site" })
    }

    /// Deliver a pre-assigned batch on a site-at-a-time schedule with the
    /// transcript of [`crate::Cluster::feed_batch`]: consecutive same-site
    /// runs go to [`Site::on_items`] as a slice, and after every
    /// message-triggering step the feeder waits for global quiescence
    /// before the site consumes further items — coordinator replies land
    /// between items exactly as in per-item delivery, so answers *and*
    /// metered words are bit-identical to the deterministic runner.
    pub fn feed_batch(&self, batch: &[(SiteId, S::Item)]) -> Result<(), SimError> {
        let mut i = 0;
        while i < batch.len() {
            let site = batch[i].0;
            let mut j = i + 1;
            while j < batch.len() && batch[j].0 == site {
                j += 1;
            }
            let tx = self.site_tx(site)?;
            let items: Vec<S::Item> = batch[i..j].iter().map(|(_, it)| it.clone()).collect();
            let total = items.len();
            let (ptx, prx) = unbounded();
            tx.send(SiteCmd::Batch {
                items,
                progress: ptx,
                token: PendingToken::new(&self.pending),
            })
            .map_err(|_| SimError::WorkerGone { who: "site" })?;
            let mut consumed_total = 0;
            loop {
                let consumed = prx
                    .recv()
                    .map_err(|_| SimError::WorkerGone { who: "site" })?;
                consumed_total += consumed;
                // The step's ups were enqueued before the progress report,
                // so the counter covers the whole cascade here.
                self.settle();
                if consumed_total >= total {
                    break;
                }
                tx.send(SiteCmd::Resume(PendingToken::new(&self.pending)))
                    .map_err(|_| SimError::WorkerGone { who: "site" })?;
            }
            i = j;
        }
        Ok(())
    }

    /// Enqueue a whole same-site run for free-running consumption: the
    /// site works through it with [`Site::on_items`] without waiting for
    /// global quiescence, so runs on different sites proceed in parallel.
    /// Maximum throughput, but in-flight communication interleaves with
    /// arrivals — the transcript is not deterministic (the ε-guarantee
    /// still holds at quiescence; the differential tests for that use
    /// [`ThreadedCluster::feed_batch`]).
    ///
    /// Returns a [`RunTicket`] that resolves when the run has been fully
    /// consumed. Feeders should keep only a small window of unresolved
    /// tickets per site: every queued-but-unconsumed item widens the gap
    /// between a site's progress and the coordinator feedback it has
    /// applied, and a feedback-starved site over-communicates (stale
    /// thresholds) — backpressure by ticket, not by queue overflow.
    pub fn ingest_run(&self, site: SiteId, items: Vec<S::Item>) -> Result<RunTicket, SimError> {
        let tx = self.site_tx(site)?;
        let (dtx, drx) = unbounded();
        if items.is_empty() {
            let _ = dtx.send(());
            return Ok(RunTicket(drx));
        }
        let token = PendingToken::new(&self.pending);
        tx.send(SiteCmd::Run(items, dtx, token))
            .map_err(|_| SimError::WorkerGone { who: "site" })?;
        Ok(RunTicket(drx))
    }

    /// Block until no message is queued or being processed anywhere.
    /// Event-driven: parks on a condvar signalled by the last in-flight
    /// message, no spinning. Cannot hang on dead workers — every queued
    /// command releases its pending count when its queue is destroyed.
    pub fn settle(&self) {
        self.pending.wait_idle();
    }

    /// Deadline-aware [`Self::settle`]: waits for quiescence at most
    /// `deadline`, then degrades to [`SimError::Timeout`] instead of an
    /// unbounded park. A stalled site may still drain afterwards — the
    /// cluster remains fully usable (and a later plain `settle` or
    /// shutdown still waits it out).
    pub fn settle_deadline(&self, deadline: Duration) -> Result<(), SimError> {
        if self.pending.wait_idle_deadline(deadline) {
            Ok(())
        } else {
            Err(SimError::Timeout {
                waited_ms: deadline.as_millis() as u64,
            })
        }
    }

    /// Run a closure against the coordinator state on its own thread and
    /// return the result. Call [`Self::settle`] first if the query must
    /// observe a quiescent state.
    pub fn with_coordinator<R, F>(&self, f: F) -> Result<R, SimError>
    where
        R: Send + 'static,
        F: FnOnce(&mut C) -> R + Send + 'static,
    {
        let coord_tx = self
            .coord_tx
            .as_ref()
            .ok_or(SimError::WorkerGone { who: "coordinator" })?;
        let (tx, rx) = unbounded();
        coord_tx
            .send(CoordCmd::With(Box::new(move |c: &mut C| {
                // Receiver outlives the closure; ignore a dropped receiver.
                let _ = tx.send(f(c));
            })))
            .map_err(|_| SimError::WorkerGone { who: "coordinator" })?;
        rx.recv()
            .map_err(|_| SimError::WorkerGone { who: "coordinator" })
    }

    /// Aggregate the per-thread communication meters into one snapshot.
    /// Call after [`Self::settle`] for a consistent picture (mid-run, a
    /// hop whose message is still queued is not yet counted). Dead site
    /// threads contribute nothing.
    pub fn cost(&self) -> MessageMeter {
        let mut total = MessageMeter::new();
        for tx in &self.site_txs {
            let (mtx, mrx) = unbounded();
            if tx.send(SiteCmd::Meter(mtx)).is_ok() {
                if let Ok(m) = mrx.recv() {
                    total.merge(&m);
                }
            }
        }
        total
    }

    /// Apply a trace configuration. Enabling before the first feed yields
    /// a complete stream: the configuration store happens-before every
    /// worker's next command receive.
    pub fn set_trace(&self, config: TraceConfig) {
        self.trace_shared.configure(config);
    }

    /// The shared trace hub (for driver-lane tracers layered on top).
    pub(crate) fn trace_shared(&self) -> &Arc<TraceShared> {
        &self.trace_shared
    }

    /// Merged, clock-ordered snapshot of every site thread's trace ring.
    /// Like [`ThreadedCluster::cost`], the round-trip queues behind
    /// in-flight work — call after [`ThreadedCluster::settle`] for a
    /// consistent stream. Dead site threads contribute nothing.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut lanes = Vec::with_capacity(self.site_txs.len());
        for tx in &self.site_txs {
            let (ttx, trx) = unbounded();
            if tx.send(SiteCmd::TraceSnap(ttx)).is_ok() {
                if let Ok((events, _)) = trx.recv() {
                    lanes.push(events);
                }
            }
        }
        merge_snapshots(lanes)
    }

    /// Total trace events lost to ring overwrite across all site threads.
    pub fn trace_dropped(&self) -> u64 {
        let mut dropped = 0;
        for tx in &self.site_txs {
            let (ttx, trx) = unbounded();
            if tx.send(SiteCmd::TraceSnap(ttx)).is_ok() {
                if let Ok((_, d)) = trx.recv() {
                    dropped += d;
                }
            }
        }
        dropped
    }

    /// Cheap, slightly-stale total-words estimate: a relaxed atomic each
    /// site thread bumps after every command it serves. Unlike
    /// [`ThreadedCluster::cost`] (whose `Meter` round-trip queues behind
    /// every in-flight run on every site), this never blocks — it is the
    /// flow controller's drift-probe source, safe to call mid-ingest.
    pub fn words_hint(&self) -> u64 {
        self.words_shared.load(Ordering::Relaxed)
    }

    /// Current cluster-wide backlog: in-flight commands plus undelivered
    /// protocol messages (the quiescence counter `settle` waits on).
    /// The flow controller stalls free-running ingest while this exceeds
    /// its in-flight budget, bounding how stale coordinator feedback can
    /// get when sites outnumber cores.
    pub fn backlog_hint(&self) -> u64 {
        self.pending.count()
    }

    /// Stop all threads and return the final coordinator, sites, and
    /// merged meter. Every thread is joined even when some worker already
    /// died — the first failure is reported *after* the teardown
    /// completes, so a failed shutdown cannot leak threads.
    pub fn shutdown(mut self) -> Result<(C, Vec<S>, MessageMeter), SimError> {
        self.settle();
        let mut first_err: Option<SimError> = None;
        let site_txs = std::mem::take(&mut self.site_txs);
        let mut replies = Vec::with_capacity(site_txs.len());
        for tx in &site_txs {
            let (stx, srx) = unbounded();
            match tx.send(SiteCmd::Stop(stx)) {
                Ok(()) => replies.push(Some(srx)),
                Err(_) => {
                    first_err.get_or_insert(SimError::WorkerGone { who: "site" });
                    replies.push(None);
                }
            }
        }
        drop(site_txs);
        let mut sites = Vec::with_capacity(replies.len());
        let mut meter = MessageMeter::new();
        for srx in replies {
            match srx.map(|rx| rx.recv()) {
                Some(Ok((site, m))) => {
                    meter.merge(&m);
                    sites.push(site);
                }
                Some(Err(_)) | None => {
                    first_err.get_or_insert(SimError::WorkerGone { who: "site" });
                }
            }
        }
        let coordinator = match self.coord_tx.take() {
            Some(ctx) => {
                let (stx, srx) = unbounded();
                let sent = ctx.send(CoordCmd::Stop(stx)).is_ok();
                drop(ctx);
                match sent.then(|| srx.recv().ok()).flatten() {
                    Some(c) => Some(c),
                    None => {
                        first_err.get_or_insert(SimError::WorkerGone { who: "coordinator" });
                        None
                    }
                }
            }
            None => None,
        };
        for h in self.site_handles.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.coord_handle.take() {
            let _ = h.join();
        }
        match (coordinator, first_err) {
            (Some(c), None) => Ok((c, sites, meter)),
            (_, Some(e)) => Err(e),
            (None, None) => Err(SimError::WorkerGone { who: "coordinator" }),
        }
    }
}

impl<S, C> Drop for ThreadedCluster<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    /// Stop every worker and join it, so a cluster that never reached
    /// [`ThreadedCluster::shutdown`] (early test return, panic in the
    /// driving thread, a shutdown that errored) cannot leak threads past
    /// its scope. After a successful `shutdown` the handle vectors are
    /// already empty and this is a no-op.
    ///
    /// Explicit `Stop` commands are required, not just dropping our
    /// senders: sites hold clones of the coordinator's sender and the
    /// coordinator holds clones of every site's sender, so without a stop
    /// signal each side would wait forever for the other's disconnect.
    fn drop(&mut self) {
        let site_txs = std::mem::take(&mut self.site_txs);
        for tx in &site_txs {
            // The reply receiver is dropped immediately; the site's final
            // state is discarded, which is the point of an abandon-path
            // teardown. A dead worker's send error is equally ignorable.
            let (stx, _srx) = unbounded();
            let _ = tx.send(SiteCmd::Stop(stx));
        }
        drop(site_txs);
        if let Some(ctx) = self.coord_tx.take() {
            let (stx, _srx) = unbounded();
            let _ = ctx.send(CoordCmd::Stop(stx));
        }
        for h in self.site_handles.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.coord_handle.take() {
            let _ = h.join();
        }
    }
}

/// Meter and forward one step's upstream messages. Each message carries
/// its own pending token, created before the site's input token is
/// released so the counter cannot dip to zero mid-cascade. Errors mean
/// the coordinator is gone; the caller exits its loop.
fn flush_ups<S, C>(
    id: SiteId,
    out: &mut Vec<S::Up>,
    meter: &mut MessageMeter,
    coord_tx: &Sender<CoordCmd<C>>,
    pending: &Arc<Pending>,
    tracer: &mut SiteTracer,
) -> Result<(), ()>
where
    S: Site,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    for up in out.drain(..) {
        meter.record_up(up.kind(), up.size_words());
        tracer.record(TraceEventKind::UpHop {
            kind: up.kind(),
            words: up.size_words(),
        });
        let token = PendingToken::new(pending);
        if coord_tx.send(CoordCmd::Up(id, up, token)).is_err() {
            // The token inside the returned command has already been
            // dropped with the error; nothing to undo.
            return Err(());
        }
    }
    Ok(())
}

/// State of a batch being consumed one quiescent step at a time.
struct BatchState<S: Site> {
    items: Vec<S::Item>,
    off: usize,
    progress: Sender<usize>,
}

/// Run one `on_items` step of the in-progress batch: consume a quiescent
/// prefix, forward any triggered ups, then report progress (after the
/// ups, so the feeder's settle observes the whole cascade).
#[allow(clippy::too_many_arguments)] // the site thread's loop state, threaded by ref
fn batch_step<S, C>(
    site: &mut S,
    cur: &mut Option<BatchState<S>>,
    id: SiteId,
    out: &mut Vec<S::Up>,
    meter: &mut MessageMeter,
    coord_tx: &Sender<CoordCmd<C>>,
    pending: &Arc<Pending>,
    tracer: &mut SiteTracer,
) -> Result<(), ()>
where
    S: Site,
    S::Item: Clone,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    let Some(batch) = cur.as_mut() else {
        debug_assert!(false, "Resume without a batch in progress");
        return Ok(());
    };
    debug_assert!(out.is_empty());
    let consumed = site.on_items(&batch.items[batch.off..], out);
    debug_assert!(consumed > 0, "on_items must make progress");
    batch.off += consumed.max(1);
    tracer.record(TraceEventKind::ItemRun {
        items: consumed.max(1) as u64,
    });
    flush_ups::<S, C>(id, out, meter, coord_tx, pending, tracer)?;
    let finished = batch.off >= batch.items.len();
    // A dropped feeder (it errored out mid-batch) is not this thread's
    // problem; keep serving the queue.
    let _ = batch.progress.send(consumed);
    if finished {
        *cur = None;
    }
    Ok(())
}

fn run_site<S, C>(
    mut site: S,
    id: SiteId,
    rx: Receiver<SiteCmd<S>>,
    coord_tx: Sender<CoordCmd<C>>,
    pending: Arc<Pending>,
    words_shared: Arc<AtomicU64>,
    mut tracer: SiteTracer,
) where
    S: Site + Send + 'static,
    S::Item: Clone,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
{
    let mut meter = MessageMeter::new();
    let mut out: Vec<S::Up> = Vec::new();
    let mut cur: Option<BatchState<S>> = None;
    // Words already published to the cluster-wide hint counter.
    let mut words_reported = 0u64;
    // Commands pulled while scanning for coordinator feedback mid-`Run`;
    // replayed in order before the next queue read.
    let mut deferred: std::collections::VecDeque<SiteCmd<S>> = std::collections::VecDeque::new();
    loop {
        let delta = meter.total_words() - words_reported;
        if delta > 0 {
            words_reported += delta;
            words_shared.fetch_add(delta, Ordering::Relaxed);
        }
        let cmd = match deferred.pop_front() {
            Some(cmd) => cmd,
            None => match rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => return,
            },
        };
        // Each tracked command's token lives to the end of the match arm:
        // outputs are enqueued (and counted) before the input is released.
        match cmd {
            SiteCmd::Item(item, token) => {
                site.on_item(item, &mut out);
                tracer.record(TraceEventKind::ItemRun { items: 1 });
                if flush_ups::<S, C>(id, &mut out, &mut meter, &coord_tx, &pending, &mut tracer)
                    .is_err()
                {
                    return;
                }
                drop(token);
            }
            SiteCmd::Batch {
                items,
                progress,
                token,
            } => {
                debug_assert!(cur.is_none(), "overlapping batches on one site");
                cur = Some(BatchState {
                    items,
                    off: 0,
                    progress,
                });
                if batch_step(
                    &mut site,
                    &mut cur,
                    id,
                    &mut out,
                    &mut meter,
                    &coord_tx,
                    &pending,
                    &mut tracer,
                )
                .is_err()
                {
                    return;
                }
                drop(token);
            }
            SiteCmd::Resume(token) => {
                if batch_step(
                    &mut site,
                    &mut cur,
                    id,
                    &mut out,
                    &mut meter,
                    &coord_tx,
                    &pending,
                    &mut tracer,
                )
                .is_err()
                {
                    return;
                }
                drop(token);
            }
            SiteCmd::Run(items, done, token) => {
                let mut off = 0;
                while off < items.len() {
                    debug_assert!(out.is_empty());
                    let consumed = site.on_items(&items[off..], &mut out);
                    debug_assert!(consumed > 0, "on_items must make progress");
                    off += consumed.max(1);
                    tracer.record(TraceEventKind::ItemRun {
                        items: consumed.max(1) as u64,
                    });
                    if flush_ups::<S, C>(id, &mut out, &mut meter, &coord_tx, &pending, &mut tracer)
                        .is_err()
                    {
                        return;
                    }
                    // Apply any coordinator feedback that has already
                    // arrived before consuming further items, as it would
                    // under per-item delivery. Without this, a
                    // feedback-driven protocol (e.g. heavy hitters) runs a
                    // whole batch against stale thresholds and floods the
                    // channel with deltas the deterministic schedule never
                    // sends. Other commands are deferred in order.
                    while let Some(next) = rx.try_recv() {
                        if let SiteCmd::Down(msg, down_token) = next {
                            meter.record_down(msg.kind(), msg.size_words());
                            tracer.record(TraceEventKind::DownHop {
                                kind: msg.kind(),
                                words: msg.size_words(),
                            });
                            site.on_message(&msg, &mut out);
                            if flush_ups::<S, C>(
                                id,
                                &mut out,
                                &mut meter,
                                &coord_tx,
                                &pending,
                                &mut tracer,
                            )
                            .is_err()
                            {
                                return;
                            }
                            drop(down_token);
                        } else {
                            deferred.push_back(next);
                        }
                    }
                }
                // A feeder that dropped its ticket is not waiting; ignore.
                let _ = done.send(());
                drop(token);
            }
            SiteCmd::Down(msg, token) => {
                meter.record_down(msg.kind(), msg.size_words());
                tracer.record(TraceEventKind::DownHop {
                    kind: msg.kind(),
                    words: msg.size_words(),
                });
                site.on_message(&msg, &mut out);
                if flush_ups::<S, C>(id, &mut out, &mut meter, &coord_tx, &pending, &mut tracer)
                    .is_err()
                {
                    return;
                }
                drop(token);
            }
            SiteCmd::Stall(micros, token) => {
                std::thread::sleep(std::time::Duration::from_micros(micros));
                drop(token);
            }
            SiteCmd::Meter(reply) => {
                let _ = reply.send(meter.clone());
            }
            SiteCmd::TraceSnap(reply) => {
                let _ = reply.send((tracer.snapshot(), tracer.dropped()));
            }
            SiteCmd::Stop(reply) => {
                let _ = reply.send((site, meter));
                return;
            }
        }
    }
}

/// Send one downstream message; a dead site only drops that site's copy
/// (its token releases the pending count with the error). A site killed
/// administratively (fault injection) is skipped before the send: downs
/// are metered at the receiving site, so the dropped hop is unmetered,
/// matching the deterministic cluster's dead-site drop bit for bit.
fn send_down<S>(
    site_txs: &[Sender<SiteCmd<S>>],
    dst: SiteId,
    msg: &Arc<S::Down>,
    pending: &Arc<Pending>,
    dead: &[AtomicBool],
) where
    S: Site,
{
    if dead
        .get(dst.index())
        .is_some_and(|d| d.load(Ordering::SeqCst))
    {
        return;
    }
    if let Some(tx) = site_txs.get(dst.index()) {
        let token = PendingToken::new(pending);
        let _ = tx.send(SiteCmd::Down(Arc::clone(msg), token));
    }
}

fn run_coordinator<S, C>(
    mut coordinator: C,
    rx: Receiver<CoordCmd<C>>,
    site_txs: Vec<Sender<SiteCmd<S>>>,
    pending: Arc<Pending>,
    dead: Arc<Vec<AtomicBool>>,
) where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Down: Send + Sync,
{
    let mut outbox: Outbox<S::Down> = Outbox::new();
    // Reused staging buffer: outbox contents move here so the borrow on
    // `outbox` ends before sends (which may block on backpressure) begin.
    let mut downs: Vec<(Down, S::Down)> = Vec::new();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            CoordCmd::Up(from, up, token) => {
                debug_assert!(outbox.is_empty());
                coordinator.on_message(from, up, &mut outbox);
                downs.extend(outbox.drain());
                for (dest, msg) in downs.drain(..) {
                    let msg = Arc::new(msg);
                    match dest {
                        Down::Unicast(dst) => send_down(&site_txs, dst, &msg, &pending, &dead),
                        Down::Broadcast => {
                            for i in 0..site_txs.len() {
                                send_down(&site_txs, SiteId(i as u32), &msg, &pending, &dead);
                            }
                        }
                    }
                }
                drop(token);
            }
            CoordCmd::With(f) => f(&mut coordinator),
            CoordCmd::Stop(reply) => {
                let _ = reply.send(coordinator);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct CountSite {
        local: u64,
    }
    #[derive(Debug)]
    struct Inc(u64);
    #[derive(Debug)]
    struct Nudge;

    impl MessageSize for Inc {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "t/inc"
        }
    }
    impl MessageSize for Nudge {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "t/nudge"
        }
    }

    impl Site for CountSite {
        type Item = u64;
        type Up = Inc;
        type Down = Nudge;
        fn on_item(&mut self, item: u64, out: &mut Vec<Inc>) {
            self.local += item;
            out.push(Inc(item));
        }
        fn on_message(&mut self, _msg: &Nudge, _out: &mut Vec<Inc>) {}
    }

    #[derive(Debug, Default)]
    struct SumCoord {
        sum: u64,
        ups: u64,
    }
    impl Coordinator for SumCoord {
        type Up = Inc;
        type Down = Nudge;
        fn on_message(&mut self, _from: SiteId, msg: Inc, out: &mut Outbox<Nudge>) {
            self.sum += msg.0;
            self.ups += 1;
            if self.ups.is_multiple_of(5) {
                out.broadcast(Nudge);
            }
        }
    }

    #[test]
    fn threaded_roundtrip_sums_and_meters() {
        let sites = (0..4).map(|_| CountSite::default()).collect();
        let cluster = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        let mut expect = 0u64;
        for i in 1..=20u64 {
            expect += i;
            cluster.feed(SiteId((i % 4) as u32), i).unwrap();
        }
        cluster.settle();
        let sum = cluster.with_coordinator(|c| c.sum).unwrap();
        assert_eq!(sum, expect);
        let meter = cluster.cost();
        assert_eq!(meter.kind("t/inc").messages, 20);
        // 4 broadcasts (after ups 5, 10, 15, 20) x 4 sites.
        assert_eq!(meter.kind("t/nudge").messages, 16);
        let (coord, sites, meter2) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, expect);
        assert_eq!(sites.iter().map(|s| s.local).sum::<u64>(), expect);
        assert_eq!(meter2.total_messages(), 36);
    }

    #[test]
    fn feed_batch_matches_per_item_transcript() {
        let stream: Vec<(SiteId, u64)> = (0..500u64)
            .map(|i| (SiteId(((i / 7) % 3) as u32), i))
            .collect();

        let sites = (0..3).map(|_| CountSite::default()).collect();
        let per_item = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        for &(site, item) in &stream {
            per_item.feed(site, item).unwrap();
            per_item.settle();
        }
        let (pc, ps, pm) = per_item.shutdown().unwrap();

        let sites = (0..3).map(|_| CountSite::default()).collect();
        let batched = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        batched.feed_batch(&stream).unwrap();
        let (bc, bs, bm) = batched.shutdown().unwrap();

        assert_eq!(pc.sum, bc.sum);
        assert_eq!(pc.ups, bc.ups);
        assert_eq!(
            ps.iter().map(|s| s.local).collect::<Vec<_>>(),
            bs.iter().map(|s| s.local).collect::<Vec<_>>()
        );
        assert_eq!(pm.report(), bm.report());
    }

    #[test]
    fn ingest_run_reaches_the_same_totals() {
        let sites = (0..2).map(|_| CountSite::default()).collect();
        let cluster = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        let t0 = cluster.ingest_run(SiteId(0), (1..=100).collect()).unwrap();
        let t1 = cluster
            .ingest_run(SiteId(1), (101..=200).collect())
            .unwrap();
        t0.wait().unwrap();
        t1.wait().unwrap();
        cluster.settle();
        let (coord, _, meter) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, (1..=200u64).sum::<u64>());
        assert_eq!(meter.kind("t/inc").messages, 200);
    }

    #[test]
    fn ingest_run_ticket_resolves_for_empty_and_dead() {
        let sites = (0..2).map(|_| CountSite::default()).collect();
        let cluster = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        // Empty run: resolved immediately.
        cluster
            .ingest_run(SiteId(0), Vec::new())
            .unwrap()
            .wait()
            .unwrap();
        cluster.shutdown().unwrap();

        // Dead site: the run's poison item kills the thread mid-run; the
        // `done` sender is destroyed with the unwinding thread's state and
        // `wait` must resolve via the disconnect — as an error, since the
        // run was *not* fully consumed — instead of hanging or reporting
        // success.
        let sites = (0..2).map(|_| PoisonSite).collect();
        let cluster = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        let ticket = cluster
            .ingest_run(SiteId(0), vec![1, 2, POISON, 3])
            .unwrap();
        assert_eq!(
            ticket.wait().unwrap_err(),
            SimError::WorkerGone { who: "site" }
        );
        cluster.settle();
        assert_eq!(
            cluster.shutdown().unwrap_err(),
            SimError::WorkerGone { who: "site" }
        );
    }

    #[test]
    fn spawn_requires_two_sites() {
        let err = ThreadedCluster::spawn(vec![CountSite::default()], SumCoord::default())
            .err()
            .unwrap();
        assert_eq!(err, SimError::TooFewSites { sites: 1 });
    }

    #[test]
    fn feed_unknown_site_errors() {
        let sites = (0..2).map(|_| CountSite::default()).collect();
        let cluster = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        let err = cluster.feed(SiteId(5), 1).unwrap_err();
        assert_eq!(err, SimError::NoSuchSite { site: 5, sites: 2 });
        cluster.shutdown().unwrap();
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        // No assertion possible on thread state from safe code; the test's
        // value is that it terminates — a Drop that failed to disconnect
        // the channels would leave workers blocked in recv forever and
        // (under `cargo test`) eventually trip the harness.
        let sites = (0..3).map(|_| CountSite::default()).collect();
        let cluster = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        for i in 0..50u64 {
            cluster.feed(SiteId((i % 3) as u32), i).unwrap();
        }
        drop(cluster);
    }

    /// A site that panics when it sees the poison value — the stand-in
    /// for a worker dying mid-run.
    #[derive(Debug, Default)]
    struct PoisonSite;
    const POISON: u64 = u64::MAX;

    impl Site for PoisonSite {
        type Item = u64;
        type Up = Inc;
        type Down = Nudge;
        fn on_item(&mut self, item: u64, out: &mut Vec<Inc>) {
            assert!(item != POISON, "poisoned (intentional test panic)");
            out.push(Inc(item));
        }
        fn on_message(&mut self, _msg: &Nudge, _out: &mut Vec<Inc>) {}
    }

    /// Regression for the old `feed` leak: `pending` was incremented
    /// before a send that could fail and never decremented on the error
    /// path, so `settle()` spun forever after a worker died. With
    /// token-tracked counts, every path — the panicked in-flight command,
    /// commands destroyed in the disconnected queue, and the failed send
    /// itself — releases its count, and `settle()` returns.
    #[test]
    fn settle_cannot_hang_after_worker_death() {
        let sites = (0..2).map(|_| PoisonSite).collect();
        let cluster = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        cluster.feed(SiteId(0), 1).unwrap();
        cluster.settle();
        // Kill site 0's thread.
        cluster.feed(SiteId(0), POISON).unwrap();
        // Keep feeding until the disconnect surfaces as an error; sends
        // that won the race and queued behind the poison release their
        // pending counts when the dead thread's queue is destroyed.
        let mut saw_error = false;
        for i in 0..10_000u64 {
            if cluster.feed(SiteId(0), i).is_err() {
                saw_error = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(saw_error, "dead worker never surfaced as a feed error");
        // The old runtime hung here.
        cluster.settle();
        // Shutdown reports the dead worker but still joins everything.
        let err = cluster.shutdown().unwrap_err();
        assert_eq!(err, SimError::WorkerGone { who: "site" });
    }

    #[test]
    fn shutdown_joins_survivors_after_worker_death() {
        let sites = (0..4).map(|_| PoisonSite).collect();
        let cluster = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        for i in 0..20u64 {
            cluster.feed(SiteId((i % 4) as u32), i).unwrap();
        }
        cluster.settle();
        cluster.feed(SiteId(2), POISON).unwrap();
        // Wait for the death to become observable, then settle and stop.
        while cluster.feed(SiteId(2), 0).is_ok() {
            std::thread::yield_now();
        }
        cluster.settle();
        let err = cluster.shutdown().unwrap_err();
        assert_eq!(err, SimError::WorkerGone { who: "site" });
        // Reaching this line means shutdown joined the three survivors
        // and the coordinator instead of early-returning.
    }

    #[test]
    fn killed_site_rejects_feeds_and_shutdown_stays_clean() {
        let sites = (0..4).map(|_| CountSite::default()).collect();
        let cluster = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        for i in 1..=4u64 {
            cluster.feed(SiteId((i % 4) as u32), i).unwrap();
        }
        cluster.settle();
        cluster.kill_site(SiteId(1)).unwrap();
        assert_eq!(
            cluster.feed(SiteId(1), 9).unwrap_err(),
            SimError::SiteDown { site: 1 }
        );
        assert_eq!(
            cluster.stall_site(SiteId(1), 10).unwrap_err(),
            SimError::SiteDown { site: 1 }
        );
        // The 5th up triggers a broadcast; the dead site's copy is dropped
        // unmetered, so only k-1 = 3 nudges are received.
        cluster.feed(SiteId(0), 5).unwrap();
        cluster.settle();
        assert_eq!(cluster.cost().kind("t/nudge").messages, 3);
        // An administrative kill is not a crash: shutdown succeeds and
        // returns the dead site's frozen state.
        let (coord, sites, _) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, 1 + 2 + 3 + 4 + 5);
        assert_eq!(sites.len(), 4);
        assert_eq!(
            cluster_err_helper(),
            SimError::NoSuchSite { site: 7, sites: 2 }
        );
    }

    /// Killing an out-of-range site errors instead of silently no-oping.
    fn cluster_err_helper() -> SimError {
        let sites = (0..2).map(|_| CountSite::default()).collect();
        let cluster: ThreadedCluster<CountSite, SumCoord> =
            ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        let err = cluster.kill_site(SiteId(7)).unwrap_err();
        cluster.shutdown().unwrap();
        err
    }

    #[test]
    fn stall_holds_quiescence_but_settle_terminates() {
        let sites = (0..2).map(|_| CountSite::default()).collect();
        let cluster = ThreadedCluster::spawn(sites, SumCoord::default()).unwrap();
        cluster.stall_site(SiteId(0), 20_000).unwrap();
        let t0 = std::time::Instant::now();
        cluster.settle();
        // settle must have waited out the stall (the token holds the
        // pending count for the duration) and still returned.
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        cluster.feed(SiteId(0), 1).unwrap();
        cluster.settle();
        let (coord, _, _) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, 1);
    }

    #[test]
    #[should_panic(expected = "quiescence counter underflow")]
    fn pending_underflow_panics_instead_of_wrapping() {
        let p = Pending::default();
        p.dec();
    }

    #[test]
    fn pending_settles_across_threads() {
        let pending = Arc::new(Pending::default());
        let tokens: Vec<PendingToken> = (0..64).map(|_| PendingToken::new(&pending)).collect();
        let waiter = {
            let pending = Arc::clone(&pending);
            std::thread::spawn(move || pending.wait_idle())
        };
        let dropper = std::thread::spawn(move || {
            for t in tokens {
                drop(t);
            }
        });
        dropper.join().unwrap();
        waiter.join().unwrap();
        assert_eq!(pending.count.load(Ordering::SeqCst), 0);
    }
}
