//! Typed queries and answers for the [`crate::Tracker`] facade.
//!
//! Every tracking protocol in the workspace answers some subset of a small
//! query algebra: a tracked total, heavy hitters above a threshold φ, a
//! single tracked quantile, arbitrary quantiles/ranks, per-item
//! frequencies. [`Query`] names the question; [`Answer`] is the typed
//! result.
//!
//! ## Display stability
//!
//! `Answer`'s [`std::fmt::Display`] is **load-bearing**: it reproduces the
//! canonical answer strings the differential-testing harness has always
//! used to compare runtimes (`estimate=…`, `m=…`, `hh(phi=…)=…`,
//! `quantile=…`, `q(…)=…`, `total=…`), bit-for-bit. The 40-scenario
//! equivalence suites and the golden cost fixture rely on this; do not
//! change a format string here without regenerating those fixtures on
//! purpose.

#![deny(missing_docs)]

use std::fmt;

use crate::error::SimError;
use crate::flow::FlowControlStats;
use dtrack_trace::TraceSummary;

/// The quantile fractions probed when a protocol answers rank/quantile
/// queries for every φ simultaneously (the canonical probe grid used by
/// the differential harness and the canonical answer sets).
pub const PROBE_PHIS: [f64; 5] = [0.05, 0.25, 0.5, 0.75, 0.95];

/// The heaviness thresholds probed against heavy-hitter protocols (the
/// canonical φ grid; only entries above a tracker's ε are meaningful).
/// Shared by the canonical answer sets and the differential checkpoint
/// checks so the two can never drift apart.
pub const HH_PROBE_PHIS: [f64; 5] = [0.02, 0.05, 0.1, 0.25, 0.5];

/// A question a [`crate::Tracker`] can be asked mid-stream.
///
/// Which queries a protocol supports depends on the protocol; asking an
/// unsupported query returns [`QueryError::Unsupported`] rather than a
/// wrong answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// The protocol's tracked total: the counter's estimate of n, the
    /// heavy-hitter tracker's m, a quantile tracker's n-estimate, or the
    /// forward-all baseline's exact total.
    Count,
    /// All items whose frequency exceeds φ·n (φ > ε required).
    HeavyHitters {
        /// Heaviness threshold φ.
        phi: f64,
    },
    /// The single quantile a §3 tracker was configured to follow.
    TrackedQuantile,
    /// An arbitrary quantile (protocols tracking the whole distribution).
    Quantile {
        /// Quantile fraction φ ∈ (0, 1).
        phi: f64,
    },
    /// Number of tracked items strictly below `x`.
    RankLt {
        /// Probe value.
        x: u64,
    },
    /// The tracked frequency of one item.
    Frequency {
        /// The item.
        x: u64,
    },
    /// The free-running flow controller's observable state (per-site
    /// windows, drift events, backoff count). Answered by the parallel
    /// backends; protocol-independent. The deterministic backend has no
    /// controller and reports the query unsupported.
    FlowControl,
    /// The trace summary (per-kind event counts, drop accounting, settle
    /// wall stats). Answered by every backend; protocol-independent.
    /// Meaningful only after `Tracker::set_trace` (or `DTRACK_TRACE`)
    /// enabled tracing — otherwise the summary is empty.
    Trace,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Count => write!(f, "count"),
            Query::HeavyHitters { phi } => write!(f, "heavy-hitters(phi={phi})"),
            Query::TrackedQuantile => write!(f, "tracked-quantile"),
            Query::Quantile { phi } => write!(f, "quantile(phi={phi})"),
            Query::RankLt { x } => write!(f, "rank-lt({x})"),
            Query::Frequency { x } => write!(f, "frequency({x})"),
            Query::FlowControl => write!(f, "flow-control"),
            Query::Trace => write!(f, "trace"),
        }
    }
}

/// A typed answer from a [`crate::Tracker`].
///
/// The count-like variants are distinct on purpose: each renders with the
/// label its protocol has always used in the canonical answer strings
/// (see the module docs), so `Display` equality *is* legacy-transcript
/// equality.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// A counter protocol's (1−ε)-approximate total. Renders `estimate=…`.
    Count(u64),
    /// A heavy-hitter tracker's tracked stream length m. Renders `m=…`.
    StreamLength(u64),
    /// A quantile-family tracker's n-estimate. Renders `n=…`.
    LengthEstimate(u64),
    /// The forward-all baseline's exact total. Renders `total=…`.
    Total(u64),
    /// The φ-heavy hitters, sorted ascending. Renders `hh(phi=…)=[…]`.
    HeavyHitters {
        /// Heaviness threshold φ.
        phi: f64,
        /// The reported items, sorted ascending (the *set* is the answer).
        items: Vec<u64>,
    },
    /// The single tracked quantile (`None` before any item arrived).
    /// Renders `quantile=…` with `-` for `None`.
    Quantile(Option<u64>),
    /// An arbitrary quantile at fraction φ. Renders `q(…)=…` with `-`
    /// for `None`.
    QuantileAt {
        /// Quantile fraction φ.
        phi: f64,
        /// The answer value, if the stream is nonempty.
        value: Option<u64>,
    },
    /// Tracked rank of a probe value. Renders `rank_lt(…)=…`.
    RankLt {
        /// Probe value.
        x: u64,
        /// Number of tracked items strictly below `x`.
        rank: u64,
    },
    /// Tracked frequency of one item. Renders `freq(…)=…`.
    Frequency {
        /// The item.
        x: u64,
        /// Its tracked frequency.
        count: u64,
    },
    /// Flow-controller snapshot. Renders via [`FlowControlStats`]'s own
    /// `Display` (`flow(win=…, drift=…, backoff=…)`). Never part of the
    /// canonical per-protocol answer sets — it describes the runtime, not
    /// the protocol.
    FlowControl(FlowControlStats),
    /// Trace summary snapshot. Renders via [`TraceSummary`]'s own
    /// `Display` (`trace(events=…, …)`). Like `FlowControl`, never part
    /// of the canonical answer sets — it describes the runtime.
    Trace(TraceSummary),
}

/// Render an optional value the way the canonical answer strings always
/// have: the value, or `-` for "no answer yet".
fn fmt_opt(q: Option<u64>) -> String {
    match q {
        Some(v) => v.to_string(),
        None => "-".to_owned(),
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Answer::Count(v) => write!(f, "estimate={v}"),
            Answer::StreamLength(v) => write!(f, "m={v}"),
            Answer::LengthEstimate(v) => write!(f, "n={v}"),
            Answer::Total(v) => write!(f, "total={v}"),
            Answer::HeavyHitters { phi, items } => write!(f, "hh(phi={phi})={items:?}"),
            Answer::Quantile(q) => write!(f, "quantile={}", fmt_opt(*q)),
            Answer::QuantileAt { phi, value } => write!(f, "q({phi})={}", fmt_opt(*value)),
            Answer::RankLt { x, rank } => write!(f, "rank_lt({x})={rank}"),
            Answer::Frequency { x, count } => write!(f, "freq({x})={count}"),
            Answer::FlowControl(stats) => write!(f, "{stats}"),
            Answer::Trace(summary) => write!(f, "{summary}"),
        }
    }
}

impl Answer {
    /// The scalar payload of a count-like answer ([`Answer::Count`],
    /// [`Answer::StreamLength`], [`Answer::LengthEstimate`],
    /// [`Answer::Total`], a rank, or a frequency).
    pub fn as_count(&self) -> Option<u64> {
        match *self {
            Answer::Count(v)
            | Answer::StreamLength(v)
            | Answer::LengthEstimate(v)
            | Answer::Total(v)
            | Answer::RankLt { rank: v, .. }
            | Answer::Frequency { count: v, .. } => Some(v),
            _ => None,
        }
    }

    /// The quantile payload ([`Answer::Quantile`] or
    /// [`Answer::QuantileAt`]); outer `None` when this is not a quantile
    /// answer, inner `None` when the stream was empty.
    pub fn as_quantile(&self) -> Option<Option<u64>> {
        match *self {
            Answer::Quantile(q) => Some(q),
            Answer::QuantileAt { value, .. } => Some(value),
            _ => None,
        }
    }

    /// The reported heavy-hitter items, if this is a heavy-hitter answer.
    pub fn as_items(&self) -> Option<&[u64]> {
        match self {
            Answer::HeavyHitters { items, .. } => Some(items),
            _ => None,
        }
    }
}

/// Why a [`Query`] could not be answered.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The protocol does not answer this query shape.
    Unsupported {
        /// Label of the protocol that was asked.
        protocol: &'static str,
        /// The query it could not answer.
        query: Query,
    },
    /// The protocol rejected the query parameters (e.g. φ ≤ ε).
    Protocol(String),
    /// The backend failed (e.g. a threaded worker died).
    Runtime(SimError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Unsupported { protocol, query } => {
                write!(f, "protocol '{protocol}' does not answer {query}")
            }
            QueryError::Protocol(detail) => write!(f, "query rejected: {detail}"),
            QueryError::Runtime(e) => write!(f, "backend failed: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<SimError> for QueryError {
    fn from(e: SimError) -> Self {
        QueryError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_canonical_strings() {
        assert_eq!(Answer::Count(42).to_string(), "estimate=42");
        assert_eq!(Answer::StreamLength(7).to_string(), "m=7");
        assert_eq!(Answer::LengthEstimate(9).to_string(), "n=9");
        assert_eq!(Answer::Total(3).to_string(), "total=3");
        assert_eq!(
            Answer::HeavyHitters {
                phi: 0.05,
                items: vec![1, 2, 30],
            }
            .to_string(),
            "hh(phi=0.05)=[1, 2, 30]"
        );
        assert_eq!(Answer::Quantile(Some(5)).to_string(), "quantile=5");
        assert_eq!(Answer::Quantile(None).to_string(), "quantile=-");
        assert_eq!(
            Answer::QuantileAt {
                phi: 0.25,
                value: None,
            }
            .to_string(),
            "q(0.25)=-"
        );
        assert_eq!(
            Answer::QuantileAt {
                phi: 0.5,
                value: Some(17),
            }
            .to_string(),
            "q(0.5)=17"
        );
        assert_eq!(
            Answer::RankLt { x: 10, rank: 4 }.to_string(),
            "rank_lt(10)=4"
        );
        assert_eq!(
            Answer::Frequency { x: 8, count: 2 }.to_string(),
            "freq(8)=2"
        );
        assert_eq!(Query::FlowControl.to_string(), "flow-control");
        assert_eq!(
            Answer::FlowControl(FlowControlStats {
                windows: vec![16, 64],
                drift_events: 2,
                backoffs: 1,
            })
            .to_string(),
            "flow(win=16..64, drift=2, backoff=1)"
        );
        assert_eq!(Query::Trace.to_string(), "trace");
        assert_eq!(
            Answer::Trace(TraceSummary::default()).to_string(),
            "trace(events=0, dropped=0)"
        );
    }

    #[test]
    fn accessors_extract_payloads() {
        assert_eq!(Answer::Count(1).as_count(), Some(1));
        assert_eq!(Answer::StreamLength(2).as_count(), Some(2));
        assert_eq!(Answer::Quantile(Some(3)).as_count(), None);
        assert_eq!(Answer::Quantile(Some(3)).as_quantile(), Some(Some(3)));
        assert_eq!(
            Answer::QuantileAt {
                phi: 0.5,
                value: None,
            }
            .as_quantile(),
            Some(None)
        );
        let hh = Answer::HeavyHitters {
            phi: 0.1,
            items: vec![4, 5],
        };
        assert_eq!(hh.as_items(), Some(&[4, 5][..]));
        assert_eq!(hh.as_quantile(), None);
    }

    #[test]
    fn query_error_displays_context() {
        let e = QueryError::Unsupported {
            protocol: "counter",
            query: Query::HeavyHitters { phi: 0.1 },
        };
        let s = e.to_string();
        assert!(s.contains("counter"));
        assert!(s.contains("heavy-hitters"));
    }
}
