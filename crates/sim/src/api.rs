//! Public-API surface listing for snapshot testing.
//!
//! [`surface`] renders the crate's public facade API as a stable text
//! document. The committed snapshot lives at `api/dtrack-sim.txt` in the
//! repository root; `crates/sim/tests/api_snapshot.rs` diffs the two so
//! any change to the public surface must be accompanied by a deliberate
//! snapshot regeneration:
//!
//! ```text
//! cargo run -p dtrack-sim --example api_dump > api/dtrack-sim.txt
//! ```
//!
//! Type lines are derived from [`std::any::type_name`], so renaming or
//! removing a listed type is a *compile* error here, not just a snapshot
//! diff; trait/method lines are asserted by the `assert_api_compiles`
//! witness below, which references every listed method.

#![deny(missing_docs)]

/// Strip generic parameters: `a::B<c::D>` → `a::B`.
fn base_name<T: ?Sized>() -> &'static str {
    let name = std::any::type_name::<T>();
    name.split('<').next().unwrap_or(name)
}

/// Render the public facade API of `dtrack-sim` as a stable document.
pub fn surface() -> String {
    let mut out = String::new();
    let mut line = |s: &str| {
        out.push_str(s);
        out.push('\n');
    };
    line("# dtrack-sim public API surface");
    line("# regenerate: cargo run -p dtrack-sim --example api_dump > api/dtrack-sim.txt");
    line("");

    line("## facade");
    let mut ty_lines: Vec<String> = Vec::new();
    macro_rules! ty {
        ($t:ty) => {
            ty_lines.push(format!("type {}", base_name::<$t>()))
        };
    }
    ty!(crate::Tracker);
    ty!(crate::TrackerBuilder);
    ty!(crate::BackendKind);
    ty!(crate::TrackerError);
    ty!(crate::Query);
    ty!(crate::Answer);
    ty!(crate::QueryError);
    ty!(crate::FlowControlConfig);
    ty!(crate::FlowControlStats);
    ty!(crate::AimdController);
    for l in &ty_lines {
        line(l);
    }
    line("const dtrack_sim::PROBE_PHIS: [f64; 5]");
    line("const dtrack_sim::HH_PROBE_PHIS: [f64; 5]");
    line("const dtrack_sim::flow::WIN_MIN: u32");
    line("const dtrack_sim::flow::WIN_MAX: u32");
    line("const dtrack_sim::tracker::TRACE_ENV: &str");
    line("trait dtrack_sim::tracker::Protocol { label sites_hint build query answers }");
    line("trait dtrack_sim::tracker::ErasedProtocol { label feed feed_batch ingest settle settle_deadline cost_hint query answers set_trace trace_events trace_dropped cost finish }");
    line("impl Tracker { builder protocol_label backend_kind num_sites feed feed_batch ingest settle settle_deadline cost_hint query answers cost set_trace trace_events trace_dropped trace_summary export_trace finish }");
    line("impl TrackerBuilder { sites backend site_queue_cap flow_control settle_deadline trace protocol build }");
    line("enum BackendKind { Deterministic Threaded Sharded{workers} Async{workers,wire} }");
    line("enum TrackerError { Protocol MissingSiteCount SiteCountMismatch InvalidConfig{knob,detail} Sim }");
    line("enum Query { Count HeavyHitters TrackedQuantile Quantile RankLt Frequency FlowControl Trace }");
    line("enum Answer { Count StreamLength LengthEstimate Total HeavyHitters Quantile QuantileAt RankLt Frequency FlowControl Trace }");
    line("impl Answer { as_count as_quantile as_items }");
    line("impl FlowControlConfig { fixed validate }");
    line("impl AimdController { new config window clean_run drift_site drift_all stats }");
    line("");

    line("## backends");
    line(&format!(
        "type {}",
        // Instantiated with the probe protocol below just to name it.
        base_name::<crate::DeterministicBackend<probe::PSite, probe::PCoord>>()
    ));
    line(&format!(
        "type {}",
        base_name::<crate::ThreadedBackend<probe::PSite, probe::PCoord>>()
    ));
    line(&format!(
        "type {}",
        base_name::<crate::ShardedBackend<probe::PSite, probe::PCoord>>()
    ));
    line(&format!(
        "type {}",
        base_name::<crate::AsyncBackend<probe::PSite, probe::PCoord>>()
    ));
    line("trait dtrack_sim::backend::Backend { feed feed_batch ingest settle settle_deadline cost_hint flow_control with_coordinator inject_fault set_trace trace_events trace_dropped cost finish }");
    line("fn dtrack_sim::backend::ThreadedBackend::spawn_with_cap(sites, coordinator, queue_cap)");
    line("fn dtrack_sim::backend::ShardedBackend::spawn_with(sites, coordinator, config)");
    line("fn dtrack_sim::backend::AsyncBackend::spawn_with(sites, coordinator, config)");
    line("fn dtrack_sim::backend::ThreadedBackend::set_flow_control(config)");
    line("fn dtrack_sim::backend::ShardedBackend::set_flow_control(config)");
    line("fn dtrack_sim::backend::AsyncBackend::set_flow_control(config)");
    line("");

    line("## model substrate");
    macro_rules! ty2 {
        ($t:ty) => {
            line(&format!("type {}", base_name::<$t>()))
        };
    }
    ty2!(crate::Cluster<probe::PSite, probe::PCoord>);
    ty2!(crate::threaded::ThreadedCluster<probe::PSite, probe::PCoord>);
    ty2!(crate::sharded::ShardedCluster<probe::PSite, probe::PCoord>);
    ty2!(crate::sharded::ShardedConfig);
    ty2!(crate::async_rt::AsyncCluster<probe::PSite, probe::PCoord>);
    ty2!(crate::async_rt::AsyncConfig);
    ty2!(crate::threaded::RunTicket);
    ty2!(crate::SiteId);
    ty2!(crate::Outbox<probe::PDown>);
    ty2!(crate::Down);
    ty2!(crate::MessageMeter);
    ty2!(crate::CostReport);
    ty2!(crate::KindCost);
    ty2!(crate::SimError);
    line("trait dtrack_sim::proto::Site { on_item on_items on_message }");
    line("trait dtrack_sim::proto::Coordinator { on_message }");
    line("trait dtrack_sim::proto::MessageSize { size_words kind }");
    line("fn dtrack_sim::threaded::RunTicket::wait -> Result<(), SimError>");
    line("fn dtrack_sim::threaded::RunTicket::wait_timeout(deadline) -> Result<(), SimError>");
    line("fn dtrack_sim::threaded::ThreadedCluster::words_hint -> u64");
    line("fn dtrack_sim::sharded::ShardedCluster::words_hint -> u64");
    line("fn dtrack_sim::async_rt::AsyncCluster::words_hint -> u64");
    line("fn dtrack_sim::threaded::ThreadedCluster::backlog_hint -> u64");
    line("fn dtrack_sim::sharded::ShardedCluster::backlog_hint -> u64");
    line("fn dtrack_sim::async_rt::AsyncCluster::backlog_hint -> u64");
    line("fn dtrack_sim::async_rt::AsyncCluster::wire_stats -> Option<WireStats>");
    line("fn dtrack_sim::async_rt::AsyncConfig::with_wire(wire) -> AsyncConfig");
    line("const dtrack_sim::threaded::SITE_QUEUE_CAP: usize");
    line("fn dtrack_sim::sharded::default_workers -> usize");
    line("enum dtrack_sim::error::SimError { Livelock NoSuchSite TooFewSites WorkerGone SiteDown Timeout Transport{detail} Decode{frame,error} }");
    line("");

    line("## tracing (re-exported from dtrack-trace)");
    macro_rules! ty3 {
        ($t:ty) => {
            line(&format!("type {}", base_name::<$t>()))
        };
    }
    ty3!(crate::TraceConfig);
    ty3!(crate::TraceEvent);
    ty3!(crate::TraceEventKind);
    ty3!(crate::TraceLane);
    ty3!(crate::TraceSummary);
    ty3!(crate::PhaseStats);
    line("impl TraceConfig { off on with_ring_capacity }");
    line("impl TraceSummary { from_events count }");
    line("fn dtrack_sim::canonical_kind_order(a, b) -> Ordering");
    line("fn dtrack_sim::merge_snapshots(lanes) -> Vec<TraceEvent>");
    line("fn dtrack_sim::export_chrome(events, writer) -> io::Result<()>");
    line("fn dtrack_sim::write_chrome_file(events, path) -> io::Result<()>");
    line("fn dtrack_sim::threaded::ThreadedCluster::{set_trace trace_events trace_dropped}");
    line("fn dtrack_sim::sharded::ShardedCluster::{set_trace trace_events trace_dropped}");
    line("fn dtrack_sim::async_rt::AsyncCluster::{set_trace trace_events trace_dropped}");
    out
}

/// Minimal concrete protocol used only to *name* generic public types in
/// the surface listing (never run).
mod probe {
    use crate::proto::{Coordinator, MessageSize, Outbox, Site, SiteId};

    /// Probe site.
    #[derive(Debug)]
    pub struct PSite;
    /// Probe upstream message.
    #[derive(Debug)]
    pub struct PUp;
    /// Probe downstream message.
    #[derive(Debug)]
    pub struct PDown;
    /// Probe coordinator.
    #[derive(Debug)]
    pub struct PCoord;

    impl MessageSize for PUp {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "probe/up"
        }
    }
    impl MessageSize for PDown {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "probe/down"
        }
    }
    impl dtrack_wire::WireMessage for PUp {
        fn wire_encode(&self, _out: &mut Vec<u8>) {}
        fn wire_decode(
            _r: &mut dtrack_wire::WireReader<'_>,
        ) -> Result<Self, dtrack_wire::DecodeError> {
            Ok(PUp)
        }
    }
    impl dtrack_wire::WireMessage for PDown {
        fn wire_encode(&self, _out: &mut Vec<u8>) {}
        fn wire_decode(
            _r: &mut dtrack_wire::WireReader<'_>,
        ) -> Result<Self, dtrack_wire::DecodeError> {
            Ok(PDown)
        }
    }
    impl Site for PSite {
        type Item = u64;
        type Up = PUp;
        type Down = PDown;
        fn on_item(&mut self, _item: u64, _out: &mut Vec<PUp>) {}
        fn on_message(&mut self, _msg: &PDown, _out: &mut Vec<PUp>) {}
    }
    impl Coordinator for PCoord {
        type Up = PUp;
        type Down = PDown;
        fn on_message(&mut self, _from: SiteId, _msg: PUp, _out: &mut Outbox<PDown>) {}
    }
}

/// Compile-time witness that every method named in [`surface`] exists
/// with a compatible shape. Never called.
#[allow(dead_code)]
fn assert_api_compiles(mut tracker: crate::Tracker) -> Result<(), Box<dyn std::error::Error>> {
    use crate::{BackendKind, Query, SiteId, Tracker};
    let _ = Tracker::builder;
    let builder = Tracker::builder()
        .sites(2)
        .backend(BackendKind::Sharded { workers: None })
        .site_queue_cap(crate::threaded::SITE_QUEUE_CAP)
        .flow_control(crate::FlowControlConfig::default())
        .settle_deadline(std::time::Duration::from_secs(30));
    let _ = builder;
    let _ = crate::ThreadedBackend::<probe::PSite, probe::PCoord>::spawn_with_cap;
    let _ = crate::ShardedBackend::<probe::PSite, probe::PCoord>::spawn_with;
    let _ = crate::AsyncBackend::<probe::PSite, probe::PCoord>::spawn_with;
    let _ = crate::ThreadedBackend::<probe::PSite, probe::PCoord>::set_flow_control;
    let _ = crate::ShardedBackend::<probe::PSite, probe::PCoord>::set_flow_control;
    let _ = crate::AsyncBackend::<probe::PSite, probe::PCoord>::set_flow_control;
    let _ = crate::AsyncCluster::<probe::PSite, probe::PCoord>::wire_stats;
    let _ = crate::threaded::RunTicket::wait_timeout;
    let _: crate::ShardedConfig = crate::ShardedConfig::default();
    let _: crate::AsyncConfig = crate::AsyncConfig::default().with_wire(true);
    let _: usize = crate::sharded::default_workers();
    let _: Result<(), String> = crate::FlowControlConfig::fixed(crate::flow::WIN_MIN).validate();
    let mut controller = crate::AimdController::new(2, crate::FlowControlConfig::default());
    let _ = controller.config();
    let _ = controller.window(0);
    controller.clean_run(0);
    controller.drift_site(0);
    controller.drift_all();
    let _: crate::FlowControlStats = controller.stats();
    let _: u32 = crate::flow::WIN_MAX;
    let _: &'static str = tracker.protocol_label();
    let _: BackendKind = tracker.backend_kind();
    let _: u32 = tracker.num_sites();
    tracker.feed(SiteId(0), 1)?;
    tracker.feed_batch(&[(SiteId(0), 1)])?;
    tracker.ingest(SiteId(0), vec![1])?;
    tracker.settle();
    tracker.settle_deadline(std::time::Duration::from_secs(30))?;
    tracker.cost_hint(1.0);
    let answer = tracker.query(Query::Count)?;
    let _ = answer.as_count();
    let _ = answer.as_quantile();
    let _ = answer.as_items();
    let _ = tracker.answers()?;
    let _: crate::MessageMeter = tracker.cost();
    tracker.set_trace(crate::TraceConfig::on().with_ring_capacity(1024));
    let events: Vec<crate::TraceEvent> = tracker.trace_events();
    let _: u64 = tracker.trace_dropped();
    let summary: crate::TraceSummary = tracker.trace_summary();
    let _: u64 = summary.count("up-hop");
    let _ = crate::TraceSummary::from_events(&events, 0);
    let _ = crate::merge_snapshots(vec![events.clone()]);
    let _ = crate::canonical_kind_order("a", "b");
    crate::export_chrome(&events, Vec::new())?;
    let _ = crate::write_chrome_file::<&str>;
    let _ = crate::Tracker::export_trace::<&str>;
    let _: &str = crate::TRACE_ENV;
    let _ = crate::threaded::ThreadedCluster::<probe::PSite, probe::PCoord>::set_trace;
    let _ = crate::threaded::ThreadedCluster::<probe::PSite, probe::PCoord>::trace_events;
    let _ = crate::threaded::ThreadedCluster::<probe::PSite, probe::PCoord>::trace_dropped;
    let _ = crate::sharded::ShardedCluster::<probe::PSite, probe::PCoord>::set_trace;
    let _ = crate::sharded::ShardedCluster::<probe::PSite, probe::PCoord>::trace_events;
    let _ = crate::sharded::ShardedCluster::<probe::PSite, probe::PCoord>::trace_dropped;
    let _ = crate::async_rt::AsyncCluster::<probe::PSite, probe::PCoord>::set_trace;
    let _ = crate::async_rt::AsyncCluster::<probe::PSite, probe::PCoord>::trace_events;
    let _ = crate::async_rt::AsyncCluster::<probe::PSite, probe::PCoord>::trace_dropped;
    let _: crate::MessageMeter = tracker.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_is_nonempty_and_names_the_facade() {
        let s = surface();
        assert!(s.contains("type dtrack_sim::tracker::Tracker"));
        assert!(s.contains("trait dtrack_sim::backend::Backend"));
        assert!(s.lines().count() > 20);
    }
}
