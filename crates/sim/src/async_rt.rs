//! Async runtime: any number of sites as lightweight tasks over a fixed
//! worker pool, with an optional framed wire codec on every hop.
//!
//! [`AsyncCluster`] is the third parallel backend, behind the same
//! surface as [`crate::threaded::ThreadedCluster`] and the sharded
//! runtime: the exact same `Site` and `Coordinator` state machines, the
//! same site-at-a-time `feed_batch` transcript, the same metering
//! discipline (ups at the sending site, downs at the receiving site).
//! The differences are mechanical, not semantic:
//!
//! * **Tasks, not threads.** Each site is a spawned task on a
//!   `tokio`-style executor (the offline stub in `stubs/tokio`); k can
//!   exceed the core count by orders of magnitude without k stacks. The
//!   coordinator is one more task.
//! * **Async channels.** Site command queues are bounded `tokio` mpsc
//!   channels: the driver uses `blocking_send` (backpressure parks the
//!   feeding OS thread), the coordinator's down-sends use `send().await`
//!   (backpressure suspends the coordinator *task*, freeing its worker).
//!   The coordinator inbox stays unbounded — the same cycle-breaking
//!   edge as the threaded runtime, so sites never suspend sending up and
//!   always drain their own queues: deadlock-free by the same argument.
//! * **Notified-watermark quiescence.** The pending count is the same
//!   token-tracked atomic as the threaded runtime, but
//!   [`AsyncCluster::settle`] awaits it as a watermark on a
//!   [`tokio::sync::Notify`] instead of parking on a condvar: create the
//!   `notified()` future first, then check the counter, then await. The
//!   stub (like upstream) guarantees a `Notified` future observes every
//!   `notify_waiters` after its creation, so the check-then-await
//!   sequence cannot miss the final decrement.
//! * **Optional wire codec.** With [`AsyncConfig::wire`] set, every
//!   up-hop and every down-hop round-trips through the length-prefixed
//!   frame codec (`dtrack-wire`) on an in-memory loopback: encode, then
//!   decode, then deliver the decoded value. The codec is an exact
//!   inverse, so serialization changes no delivered value and perturbs
//!   no metered word; a decode failure (impossible unless the codec or
//!   a frame is corrupt) is recorded in a shared poison slot and
//!   surfaced as [`SimError::Decode`] by the driver-facing methods,
//!   never as a panic.
//!
//! Transcript determinism is unchanged from the threaded runtime because
//! scheduling is at *run granularity*: `feed_batch` quiesces the whole
//! system between same-site steps, so which worker polls which task (the
//! only thing the executor chooses) can reorder nothing observable.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender as CbSender};
use dtrack_trace::{
    merge_snapshots, SiteTracer, TraceConfig, TraceEvent, TraceEventKind, TraceLane, TraceShared,
};
use dtrack_wire::{Dest, Loopback, WireMessage, WireStats};
use tokio::sync::mpsc;
use tokio::sync::Notify;

use crate::error::SimError;
use crate::meter::MessageMeter;
use crate::proto::{Coordinator, Down, MessageSize, Outbox, Site, SiteId};
use crate::threaded::{RunTicket, SITE_QUEUE_CAP};

/// Configuration for [`AsyncCluster::spawn_with`].
#[derive(Debug, Clone, Copy)]
pub struct AsyncConfig {
    /// Worker threads in the executor pool; `None` means one per
    /// available core.
    pub workers: Option<usize>,
    /// Per-site command-queue capacity (see
    /// [`crate::threaded::SITE_QUEUE_CAP`]).
    pub site_queue_cap: usize,
    /// Route every site↔coordinator hop through the `dtrack-wire` frame
    /// codec on an in-memory loopback.
    pub wire: bool,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            workers: None,
            site_queue_cap: SITE_QUEUE_CAP,
            wire: false,
        }
    }
}

impl AsyncConfig {
    /// This configuration with the wire codec switched on or off.
    pub fn with_wire(mut self, wire: bool) -> Self {
        self.wire = wire;
        self
    }
}

/// Quiescence bookkeeping for the async runtime: the same token-tracked
/// in-flight counter as the threaded runtime's `Pending`, but signalled
/// through a [`Notify`] watermark instead of a condvar so the waiter can
/// be a future.
#[derive(Default)]
struct AsyncPending {
    count: AtomicU64,
    idle: Notify,
}

impl AsyncPending {
    fn inc(&self) {
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    fn dec(&self) {
        let prev = self.count.fetch_sub(1, Ordering::SeqCst);
        assert!(
            prev != 0,
            "Pending::dec without a matching inc — quiescence counter underflow"
        );
        if prev == 1 {
            // Every waiter created its Notified future *before* loading
            // the counter, so this generation bump reaches all of them
            // (the stub's documented watermark guarantee).
            self.idle.notify_waiters();
        }
    }

    fn count(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    /// Await quiescence: register interest first, then check, then await
    /// — the notified-watermark idiom that cannot miss the last
    /// decrement between the check and the await.
    async fn wait_idle(&self) {
        loop {
            let notified = self.idle.notified();
            if self.count.load(Ordering::SeqCst) == 0 {
                return;
            }
            notified.await;
        }
    }
}

/// One unit of the pending count (see the threaded runtime's
/// `PendingToken`): created at send time, released on drop — on success,
/// on a failed send (the command comes back inside the error), in a
/// disconnected queue's backlog, and when a task panics and its queue is
/// destroyed.
struct AToken(Arc<AsyncPending>);

impl AToken {
    fn new(pending: &Arc<AsyncPending>) -> Self {
        pending.inc();
        AToken(Arc::clone(pending))
    }
}

impl Drop for AToken {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// The loopback wire link shared by every task when the codec is on:
/// frame counters plus the sticky poison slot a decode failure lands in.
struct WireLink {
    loopback: Loopback,
    poison: Mutex<Option<SimError>>,
}

impl WireLink {
    fn new() -> Self {
        WireLink {
            loopback: Loopback::new(),
            poison: Mutex::new(None),
        }
    }

    fn poison_with(&self, err: SimError) {
        let mut slot = self.poison.lock().unwrap_or_else(|e| e.into_inner());
        slot.get_or_insert(err);
    }

    fn check(&self) -> Result<(), SimError> {
        match &*self.poison.lock().unwrap_or_else(|e| e.into_inner()) {
            Some(err) => Err(err.clone()),
            None => Ok(()),
        }
    }

    /// Round-trip one upstream hop through the codec, returning the frame
    /// byte length alongside. The decoded value is byte-identical to the
    /// original, so forwarding it changes nothing metered; a decode
    /// failure poisons the link and falls back to the original (with a
    /// zero frame length) so the cluster stays live for teardown.
    fn up_hop<U: WireMessage>(&self, origin: SiteId, up: U) -> (SiteId, U, u64) {
        match self.loopback.roundtrip_up_sized(origin.0, &up) {
            Ok((from, decoded, bytes)) => (SiteId(from), decoded, bytes),
            Err(error) => {
                self.poison_with(SimError::Decode { frame: "up", error });
                (origin, up, 0)
            }
        }
    }

    /// Round-trip one downstream routing decision (pre-broadcast
    /// expansion: a broadcast is one frame, expanded to k sends after
    /// decoding, exactly as the unframed path expands it), returning the
    /// frame byte length alongside.
    fn down_hop<D: WireMessage>(&self, dest: Down, msg: D) -> (Down, D, u64) {
        let wire_dest = match dest {
            Down::Unicast(site) => Dest::Site(site.0),
            Down::Broadcast => Dest::Broadcast,
        };
        match self.loopback.roundtrip_down_sized(wire_dest, &msg) {
            Ok((decoded_dest, decoded, bytes)) => {
                let dest = match decoded_dest {
                    Dest::Site(site) => Down::Unicast(SiteId(site)),
                    Dest::Broadcast => Down::Broadcast,
                };
                (dest, decoded, bytes)
            }
            Err(error) => {
                self.poison_with(SimError::Decode {
                    frame: "down",
                    error,
                });
                (dest, msg, 0)
            }
        }
    }
}

enum SiteCmd<S: Site> {
    /// One item; the per-item slow path.
    Item(S::Item, AToken),
    /// A same-site run consumed one quiescent step at a time (see the
    /// threaded runtime's batch protocol — identical here).
    Batch {
        items: Vec<S::Item>,
        progress: CbSender<usize>,
        token: AToken,
    },
    /// Continue the in-progress batch with the next quiescent step.
    Resume(AToken),
    /// A same-site run consumed to completion without global
    /// synchronization (free-running parallel ingest).
    Run(Vec<S::Item>, CbSender<()>, AToken),
    /// A downstream protocol message from the coordinator.
    Down(Arc<S::Down>, AToken),
    /// Fault injection: hold this site's current worker for the given
    /// number of microseconds (a slow consumer).
    Stall(u64, AToken),
    /// Snapshot this site task's meter.
    Meter(CbSender<MessageMeter>),
    /// Snapshot this site task's trace ring (events + overflow count).
    TraceSnap(CbSender<(Vec<TraceEvent>, u64)>),
    /// Hand back the site state machine and meter, then finish the task.
    Stop(CbSender<(S, MessageMeter)>),
}

enum CoordCmd<C: Coordinator> {
    Up(SiteId, C::Up, AToken),
    With(Box<dyn FnOnce(&mut C) + Send>),
    /// Snapshot the coordinator task's trace ring (wire-frame events).
    TraceSnap(CbSender<(Vec<TraceEvent>, u64)>),
    Stop(CbSender<C>),
}

/// A cluster running as tasks on a fixed worker pool: k site tasks plus a
/// coordinator task, multiplexed over [`AsyncConfig::workers`] threads.
pub struct AsyncCluster<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send + WireMessage,
    S::Down: Send + Sync + WireMessage,
{
    /// Owns the worker pool; dropped last, after every task has been
    /// stopped, so worker joins cannot wedge on live tasks.
    rt: tokio::runtime::Runtime,
    site_txs: Vec<mpsc::Sender<SiteCmd<S>>>,
    coord_tx: Option<mpsc::UnboundedSender<CoordCmd<C>>>,
    pending: Arc<AsyncPending>,
    /// Administrative fault-injection mask (see the threaded runtime):
    /// feeds to a killed site error, down-sends skip it unmetered.
    dead: Arc<Vec<AtomicBool>>,
    /// Relaxed running total of metered words for non-blocking
    /// flow-control probes.
    words_shared: Arc<AtomicU64>,
    /// Present when the wire codec is on.
    wire: Option<Arc<WireLink>>,
    /// Shared tracing switch + logical clock; every task holds a clone.
    trace_shared: Arc<TraceShared>,
}

impl<S, C> AsyncCluster<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send + WireMessage,
    S::Down: Send + Sync + WireMessage,
{
    /// Spawn with defaults: one worker per core, the default queue
    /// capacity, wire codec off.
    pub fn spawn(sites: Vec<S>, coordinator: C) -> Result<Self, SimError> {
        Self::spawn_with(sites, coordinator, AsyncConfig::default())
    }

    /// Spawn one task per site plus a coordinator task on a fresh worker
    /// pool.
    pub fn spawn_with(
        sites: Vec<S>,
        coordinator: C,
        config: AsyncConfig,
    ) -> Result<Self, SimError> {
        if sites.len() < 2 {
            return Err(SimError::TooFewSites {
                sites: sites.len() as u32,
            });
        }
        let queue_cap = config.site_queue_cap.max(1);
        let mut builder = tokio::runtime::Builder::new_multi_thread();
        if let Some(workers) = config.workers {
            builder.worker_threads(workers.max(1));
        }
        let rt = builder
            .enable_all()
            .build()
            .map_err(|_| SimError::Transport {
                detail: "executor failed to start",
            })?;

        let pending = Arc::new(AsyncPending::default());
        let words_shared = Arc::new(AtomicU64::new(0));
        let wire = config.wire.then(|| Arc::new(WireLink::new()));
        let trace_shared = Arc::new(TraceShared::new());
        let (coord_tx, coord_rx) = mpsc::unbounded_channel::<CoordCmd<C>>();

        let mut site_txs = Vec::with_capacity(sites.len());
        for (i, site) in sites.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<SiteCmd<S>>(queue_cap);
            site_txs.push(tx);
            let coord_tx = coord_tx.clone();
            let pending = Arc::clone(&pending);
            let words_shared = Arc::clone(&words_shared);
            let wire = wire.clone();
            let id = SiteId(i as u32);
            let tracer = SiteTracer::new(Arc::clone(&trace_shared), TraceLane::Site(i as u32));
            rt.spawn(run_site(
                site,
                id,
                rx,
                coord_tx,
                pending,
                words_shared,
                wire,
                tracer,
            ));
        }

        let dead: Arc<Vec<AtomicBool>> = Arc::new(
            (0..site_txs.len())
                .map(|_| AtomicBool::new(false))
                .collect(),
        );
        rt.spawn(run_coordinator(
            coordinator,
            coord_rx,
            site_txs.clone(),
            Arc::clone(&pending),
            Arc::clone(&dead),
            wire.clone(),
            SiteTracer::new(Arc::clone(&trace_shared), TraceLane::Coordinator),
        ));

        Ok(AsyncCluster {
            rt,
            site_txs,
            coord_tx: Some(coord_tx),
            pending,
            dead,
            words_shared,
            wire,
            trace_shared,
        })
    }

    /// Number of sites k.
    pub fn num_sites(&self) -> u32 {
        self.site_txs.len() as u32
    }

    /// Worker threads in the executor pool.
    pub fn num_workers(&self) -> usize {
        self.rt.metrics_num_workers()
    }

    /// Wire-codec frame counters, when the codec is on.
    pub fn wire_stats(&self) -> Option<WireStats> {
        self.wire.as_ref().map(|link| link.loopback.stats())
    }

    /// Surface a sticky wire decode failure (set by any task, observed by
    /// the driver); `Ok` when the codec is off or healthy.
    fn wire_check(&self) -> Result<(), SimError> {
        match &self.wire {
            Some(link) => link.check(),
            None => Ok(()),
        }
    }

    fn site_tx(&self, site: SiteId) -> Result<&mpsc::Sender<SiteCmd<S>>, SimError> {
        if self
            .dead
            .get(site.index())
            .is_some_and(|d| d.load(Ordering::SeqCst))
        {
            return Err(SimError::SiteDown { site: site.0 });
        }
        self.site_txs.get(site.index()).ok_or(SimError::NoSuchSite {
            site: site.0,
            sites: self.site_txs.len() as u32,
        })
    }

    /// Administratively kill a site (fault injection); semantics match
    /// the threaded runtime's `kill_site` bit for bit.
    pub fn kill_site(&self, site: SiteId) -> Result<(), SimError> {
        let k = self.site_txs.len() as u32;
        let slot = self.dead.get(site.index()).ok_or(SimError::NoSuchSite {
            site: site.0,
            sites: k,
        })?;
        slot.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Fault injection: hold `site`'s task (and its current worker) for
    /// `micros` microseconds.
    pub fn stall_site(&self, site: SiteId, micros: u64) -> Result<(), SimError> {
        let tx = self.site_tx(site)?;
        let token = AToken::new(&self.pending);
        tx.blocking_send(SiteCmd::Stall(micros, token))
            .map_err(|_| SimError::WorkerGone { who: "site" })
    }

    /// Deliver an item to a site (asynchronously). Blocks the calling
    /// thread only when the site's queue is full — backpressure, not
    /// unbounded buffering.
    pub fn feed(&self, site: SiteId, item: S::Item) -> Result<(), SimError> {
        self.wire_check()?;
        let tx = self.site_tx(site)?;
        let token = AToken::new(&self.pending);
        tx.blocking_send(SiteCmd::Item(item, token))
            .map_err(|_| SimError::WorkerGone { who: "site" })
    }

    /// Deliver a pre-assigned batch on the site-at-a-time schedule with
    /// the transcript of [`crate::Cluster::feed_batch`] — the same step
    /// protocol as the threaded runtime, so answers *and* metered words
    /// are bit-identical across all four backends.
    pub fn feed_batch(&self, batch: &[(SiteId, S::Item)]) -> Result<(), SimError> {
        self.wire_check()?;
        let mut i = 0;
        while i < batch.len() {
            let site = batch[i].0;
            let mut j = i + 1;
            while j < batch.len() && batch[j].0 == site {
                j += 1;
            }
            let tx = self.site_tx(site)?;
            let items: Vec<S::Item> = batch[i..j].iter().map(|(_, it)| it.clone()).collect();
            let total = items.len();
            let (ptx, prx) = unbounded();
            tx.blocking_send(SiteCmd::Batch {
                items,
                progress: ptx,
                token: AToken::new(&self.pending),
            })
            .map_err(|_| SimError::WorkerGone { who: "site" })?;
            let mut consumed_total = 0;
            loop {
                let consumed = prx
                    .recv()
                    .map_err(|_| SimError::WorkerGone { who: "site" })?;
                consumed_total += consumed;
                self.settle();
                if consumed_total >= total {
                    break;
                }
                tx.blocking_send(SiteCmd::Resume(AToken::new(&self.pending)))
                    .map_err(|_| SimError::WorkerGone { who: "site" })?;
            }
            i = j;
        }
        self.wire_check()
    }

    /// Enqueue a whole same-site run for free-running consumption (see
    /// the threaded runtime's `ingest_run` — identical contract, same
    /// [`RunTicket`]).
    pub fn ingest_run(&self, site: SiteId, items: Vec<S::Item>) -> Result<RunTicket, SimError> {
        self.wire_check()?;
        let tx = self.site_tx(site)?;
        let (dtx, drx) = unbounded();
        if items.is_empty() {
            let _ = dtx.send(());
            return Ok(RunTicket(drx));
        }
        let token = AToken::new(&self.pending);
        tx.blocking_send(SiteCmd::Run(items, dtx, token))
            .map_err(|_| SimError::WorkerGone { who: "site" })?;
        Ok(RunTicket(drx))
    }

    /// Block until no message is queued or being processed anywhere:
    /// awaits the pending counter as a notified watermark (interest
    /// registered before the zero-check, so the final decrement cannot
    /// slip between check and park).
    pub fn settle(&self) {
        self.rt.block_on(self.pending.wait_idle());
    }

    /// Deadline-aware [`Self::settle`] via the executor's timer: waits at
    /// most `deadline`, then degrades to [`SimError::Timeout`]. The
    /// cluster remains fully usable after a timeout.
    pub fn settle_deadline(&self, deadline: Duration) -> Result<(), SimError> {
        self.rt
            .block_on(tokio::time::timeout(deadline, self.pending.wait_idle()))
            .map_err(|_| SimError::Timeout {
                waited_ms: deadline.as_millis() as u64,
            })
    }

    /// Run a closure against the coordinator state on its task and return
    /// the result (settle first for a quiescent snapshot).
    pub fn with_coordinator<R, F>(&self, f: F) -> Result<R, SimError>
    where
        R: Send + 'static,
        F: FnOnce(&mut C) -> R + Send + 'static,
    {
        let coord_tx = self
            .coord_tx
            .as_ref()
            .ok_or(SimError::WorkerGone { who: "coordinator" })?;
        let (tx, rx) = unbounded();
        coord_tx
            .send(CoordCmd::With(Box::new(move |c: &mut C| {
                let _ = tx.send(f(c));
            })))
            .map_err(|_| SimError::WorkerGone { who: "coordinator" })?;
        rx.recv()
            .map_err(|_| SimError::WorkerGone { who: "coordinator" })
    }

    /// Aggregate the per-task communication meters into one snapshot
    /// (settle first for a consistent picture). Dead site tasks
    /// contribute nothing.
    pub fn cost(&self) -> MessageMeter {
        let mut total = MessageMeter::new();
        for tx in &self.site_txs {
            let (mtx, mrx) = unbounded();
            if tx.blocking_send(SiteCmd::Meter(mtx)).is_ok() {
                if let Ok(m) = mrx.recv() {
                    total.merge(&m);
                }
            }
        }
        total
    }

    /// Reconfigure tracing for every task. Safe at any time; for a
    /// complete stream, configure before the first feed (the SeqCst store
    /// happens-before every later command send).
    pub fn set_trace(&self, config: TraceConfig) {
        self.trace_shared.configure(config);
    }

    /// The shared trace switch, for driver-side tracers on the same
    /// logical clock.
    pub(crate) fn trace_shared(&self) -> &Arc<TraceShared> {
        &self.trace_shared
    }

    /// Snapshot every task's trace ring, merged into one clock-ordered
    /// stream (settle first for a complete picture). Tasks that already
    /// died contribute nothing.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut lanes = Vec::with_capacity(self.site_txs.len() + 1);
        for tx in &self.site_txs {
            let (ttx, trx) = unbounded();
            if tx.blocking_send(SiteCmd::TraceSnap(ttx)).is_ok() {
                if let Ok((events, _)) = trx.recv() {
                    lanes.push(events);
                }
            }
        }
        if let Some(ctx) = &self.coord_tx {
            let (ttx, trx) = unbounded();
            if ctx.send(CoordCmd::TraceSnap(ttx)).is_ok() {
                if let Ok((events, _)) = trx.recv() {
                    lanes.push(events);
                }
            }
        }
        merge_snapshots(lanes)
    }

    /// Total trace events lost to ring overflow across every task.
    pub fn trace_dropped(&self) -> u64 {
        let mut dropped = 0;
        for tx in &self.site_txs {
            let (ttx, trx) = unbounded();
            if tx.blocking_send(SiteCmd::TraceSnap(ttx)).is_ok() {
                if let Ok((_, d)) = trx.recv() {
                    dropped += d;
                }
            }
        }
        if let Some(ctx) = &self.coord_tx {
            let (ttx, trx) = unbounded();
            if ctx.send(CoordCmd::TraceSnap(ttx)).is_ok() {
                if let Ok((_, d)) = trx.recv() {
                    dropped += d;
                }
            }
        }
        dropped
    }

    /// Cheap, slightly-stale total-words estimate (see the threaded
    /// runtime's `words_hint`) — the flow controller's drift-probe
    /// source, safe to call mid-ingest.
    pub fn words_hint(&self) -> u64 {
        self.words_shared.load(Ordering::Relaxed)
    }

    /// Current cluster-wide backlog: the quiescence counter `settle`
    /// waits on.
    pub fn backlog_hint(&self) -> u64 {
        self.pending.count()
    }

    /// Stop every task and return the final coordinator, sites, and
    /// merged meter. Every task is stopped even when some already died;
    /// the first failure is reported after teardown completes.
    pub fn shutdown(mut self) -> Result<(C, Vec<S>, MessageMeter), SimError> {
        self.settle();
        let mut first_err: Option<SimError> = self.wire_check().err();
        let site_txs = std::mem::take(&mut self.site_txs);
        let mut replies = Vec::with_capacity(site_txs.len());
        for tx in &site_txs {
            let (stx, srx) = unbounded();
            match tx.blocking_send(SiteCmd::Stop(stx)) {
                Ok(()) => replies.push(Some(srx)),
                Err(_) => {
                    first_err.get_or_insert(SimError::WorkerGone { who: "site" });
                    replies.push(None);
                }
            }
        }
        drop(site_txs);
        let mut sites = Vec::with_capacity(replies.len());
        let mut meter = MessageMeter::new();
        for srx in replies {
            match srx.map(|rx| rx.recv()) {
                Some(Ok((site, m))) => {
                    meter.merge(&m);
                    sites.push(site);
                }
                Some(Err(_)) | None => {
                    first_err.get_or_insert(SimError::WorkerGone { who: "site" });
                }
            }
        }
        let coordinator = match self.coord_tx.take() {
            Some(ctx) => {
                let (stx, srx) = unbounded();
                let sent = ctx.send(CoordCmd::Stop(stx)).is_ok();
                drop(ctx);
                match sent.then(|| srx.recv().ok()).flatten() {
                    Some(c) => Some(c),
                    None => {
                        first_err.get_or_insert(SimError::WorkerGone { who: "coordinator" });
                        None
                    }
                }
            }
            None => None,
        };
        // `self` drops here: its Drop sees the emptied sender lists and
        // only tears down the (now task-free) worker pool.
        match (coordinator, first_err) {
            (Some(c), None) => Ok((c, sites, meter)),
            (_, Some(e)) => Err(e),
            (None, None) => Err(SimError::WorkerGone { who: "coordinator" }),
        }
    }
}

impl<S, C> Drop for AsyncCluster<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send + WireMessage,
    S::Down: Send + Sync + WireMessage,
{
    /// Stop every task before the runtime (and its worker pool) is torn
    /// down, so an abandoned cluster cannot leak suspended tasks. After a
    /// successful [`AsyncCluster::shutdown`] the sender lists are already
    /// empty and only the pool teardown remains.
    fn drop(&mut self) {
        let site_txs = std::mem::take(&mut self.site_txs);
        for tx in &site_txs {
            let (stx, _srx) = unbounded();
            let _ = tx.blocking_send(SiteCmd::Stop(stx));
        }
        drop(site_txs);
        if let Some(ctx) = self.coord_tx.take() {
            let (stx, _srx) = unbounded();
            let _ = ctx.send(CoordCmd::Stop(stx));
        }
        // `rt` drops with `self`: workers drain the queued Stop wakeups
        // (the queue is emptied before the shutdown flag is honored) and
        // then join.
    }
}

/// Meter and forward one step's upstream messages, optionally through the
/// wire codec. Each message carries its own pending token, created before
/// the input token is released. Errors mean the coordinator is gone.
#[allow(clippy::too_many_arguments)] // the site task's loop state, threaded by ref
fn flush_ups<S, C>(
    id: SiteId,
    out: &mut Vec<S::Up>,
    meter: &mut MessageMeter,
    coord_tx: &mpsc::UnboundedSender<CoordCmd<C>>,
    pending: &Arc<AsyncPending>,
    wire: Option<&WireLink>,
    tracer: &mut SiteTracer,
) -> Result<(), ()>
where
    S: Site,
    S::Up: WireMessage,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    for up in out.drain(..) {
        let (from, up) = match wire {
            Some(link) => {
                let (from, up, bytes) = link.up_hop(id, up);
                tracer.record(TraceEventKind::WireFrame { bytes });
                (from, up)
            }
            None => (id, up),
        };
        meter.record_up(up.kind(), up.size_words());
        tracer.record(TraceEventKind::UpHop {
            kind: up.kind(),
            words: up.size_words(),
        });
        let token = AToken::new(pending);
        if coord_tx.send(CoordCmd::Up(from, up, token)).is_err() {
            return Err(());
        }
    }
    Ok(())
}

/// State of a batch being consumed one quiescent step at a time.
struct BatchState<S: Site> {
    items: Vec<S::Item>,
    off: usize,
    progress: CbSender<usize>,
}

/// Run one `on_items` step of the in-progress batch (see the threaded
/// runtime's `batch_step` — identical protocol).
#[allow(clippy::too_many_arguments)] // the site task's loop state, threaded by ref
fn batch_step<S, C>(
    site: &mut S,
    cur: &mut Option<BatchState<S>>,
    id: SiteId,
    out: &mut Vec<S::Up>,
    meter: &mut MessageMeter,
    coord_tx: &mpsc::UnboundedSender<CoordCmd<C>>,
    pending: &Arc<AsyncPending>,
    wire: Option<&WireLink>,
    tracer: &mut SiteTracer,
) -> Result<(), ()>
where
    S: Site,
    S::Item: Clone,
    S::Up: WireMessage,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    let Some(batch) = cur.as_mut() else {
        debug_assert!(false, "Resume without a batch in progress");
        return Ok(());
    };
    debug_assert!(out.is_empty());
    let consumed = site.on_items(&batch.items[batch.off..], out);
    debug_assert!(consumed > 0, "on_items must make progress");
    batch.off += consumed.max(1);
    tracer.record(TraceEventKind::ItemRun {
        items: consumed.max(1) as u64,
    });
    flush_ups::<S, C>(id, out, meter, coord_tx, pending, wire, tracer)?;
    let finished = batch.off >= batch.items.len();
    let _ = batch.progress.send(consumed);
    if finished {
        *cur = None;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)] // the site task's loop state, moved in at spawn
async fn run_site<S, C>(
    mut site: S,
    id: SiteId,
    mut rx: mpsc::Receiver<SiteCmd<S>>,
    coord_tx: mpsc::UnboundedSender<CoordCmd<C>>,
    pending: Arc<AsyncPending>,
    words_shared: Arc<AtomicU64>,
    wire: Option<Arc<WireLink>>,
    mut tracer: SiteTracer,
) where
    S: Site + Send + 'static,
    S::Item: Clone,
    S::Up: WireMessage,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
{
    let wire = wire.as_deref();
    let mut meter = MessageMeter::new();
    let mut out: Vec<S::Up> = Vec::new();
    let mut cur: Option<BatchState<S>> = None;
    let mut words_reported = 0u64;
    // Commands pulled while scanning for coordinator feedback mid-`Run`;
    // replayed in order before the next queue read.
    let mut deferred: std::collections::VecDeque<SiteCmd<S>> = std::collections::VecDeque::new();
    loop {
        let delta = meter.total_words() - words_reported;
        if delta > 0 {
            words_reported += delta;
            words_shared.fetch_add(delta, Ordering::Relaxed);
        }
        let cmd = match deferred.pop_front() {
            Some(cmd) => cmd,
            None => match rx.recv().await {
                Some(cmd) => cmd,
                None => return,
            },
        };
        match cmd {
            SiteCmd::Item(item, token) => {
                site.on_item(item, &mut out);
                tracer.record(TraceEventKind::ItemRun { items: 1 });
                if flush_ups::<S, C>(
                    id,
                    &mut out,
                    &mut meter,
                    &coord_tx,
                    &pending,
                    wire,
                    &mut tracer,
                )
                .is_err()
                {
                    return;
                }
                drop(token);
            }
            SiteCmd::Batch {
                items,
                progress,
                token,
            } => {
                debug_assert!(cur.is_none(), "overlapping batches on one site");
                cur = Some(BatchState {
                    items,
                    off: 0,
                    progress,
                });
                if batch_step(
                    &mut site,
                    &mut cur,
                    id,
                    &mut out,
                    &mut meter,
                    &coord_tx,
                    &pending,
                    wire,
                    &mut tracer,
                )
                .is_err()
                {
                    return;
                }
                drop(token);
            }
            SiteCmd::Resume(token) => {
                if batch_step(
                    &mut site,
                    &mut cur,
                    id,
                    &mut out,
                    &mut meter,
                    &coord_tx,
                    &pending,
                    wire,
                    &mut tracer,
                )
                .is_err()
                {
                    return;
                }
                drop(token);
            }
            SiteCmd::Run(items, done, token) => {
                let mut off = 0;
                while off < items.len() {
                    debug_assert!(out.is_empty());
                    let consumed = site.on_items(&items[off..], &mut out);
                    debug_assert!(consumed > 0, "on_items must make progress");
                    off += consumed.max(1);
                    tracer.record(TraceEventKind::ItemRun {
                        items: consumed.max(1) as u64,
                    });
                    if flush_ups::<S, C>(
                        id,
                        &mut out,
                        &mut meter,
                        &coord_tx,
                        &pending,
                        wire,
                        &mut tracer,
                    )
                    .is_err()
                    {
                        return;
                    }
                    // Apply coordinator feedback that has already arrived
                    // before consuming further items (see the threaded
                    // runtime); other commands are deferred in order.
                    while let Ok(next) = rx.try_recv() {
                        if let SiteCmd::Down(msg, down_token) = next {
                            meter.record_down(msg.kind(), msg.size_words());
                            tracer.record(TraceEventKind::DownHop {
                                kind: msg.kind(),
                                words: msg.size_words(),
                            });
                            site.on_message(&msg, &mut out);
                            if flush_ups::<S, C>(
                                id,
                                &mut out,
                                &mut meter,
                                &coord_tx,
                                &pending,
                                wire,
                                &mut tracer,
                            )
                            .is_err()
                            {
                                return;
                            }
                            drop(down_token);
                        } else {
                            deferred.push_back(next);
                        }
                    }
                }
                let _ = done.send(());
                drop(token);
            }
            SiteCmd::Down(msg, token) => {
                meter.record_down(msg.kind(), msg.size_words());
                tracer.record(TraceEventKind::DownHop {
                    kind: msg.kind(),
                    words: msg.size_words(),
                });
                site.on_message(&msg, &mut out);
                if flush_ups::<S, C>(
                    id,
                    &mut out,
                    &mut meter,
                    &coord_tx,
                    &pending,
                    wire,
                    &mut tracer,
                )
                .is_err()
                {
                    return;
                }
                drop(token);
            }
            SiteCmd::Stall(micros, token) => {
                // Deliberately blocks this worker thread, not just the
                // task: a stalled site consumes real pool capacity, the
                // same resource model as a stalled thread in the
                // threaded runtime.
                std::thread::sleep(Duration::from_micros(micros));
                drop(token);
            }
            SiteCmd::Meter(reply) => {
                let _ = reply.send(meter.clone());
            }
            SiteCmd::TraceSnap(reply) => {
                let _ = reply.send((tracer.snapshot(), tracer.dropped()));
            }
            SiteCmd::Stop(reply) => {
                let _ = reply.send((site, meter));
                return;
            }
        }
    }
}

/// Send one downstream message to one site: dead sites are skipped before
/// the send (unmetered, matching every other backend), backpressure
/// suspends the coordinator task.
async fn send_down<S>(
    site_txs: &[mpsc::Sender<SiteCmd<S>>],
    dst: SiteId,
    msg: &Arc<S::Down>,
    pending: &Arc<AsyncPending>,
    dead: &[AtomicBool],
) where
    S: Site,
{
    if dead
        .get(dst.index())
        .is_some_and(|d| d.load(Ordering::SeqCst))
    {
        return;
    }
    if let Some(tx) = site_txs.get(dst.index()) {
        let token = AToken::new(pending);
        let _ = tx.send(SiteCmd::Down(Arc::clone(msg), token)).await;
    }
}

async fn run_coordinator<S, C>(
    mut coordinator: C,
    mut rx: mpsc::UnboundedReceiver<CoordCmd<C>>,
    site_txs: Vec<mpsc::Sender<SiteCmd<S>>>,
    pending: Arc<AsyncPending>,
    dead: Arc<Vec<AtomicBool>>,
    wire: Option<Arc<WireLink>>,
    mut tracer: SiteTracer,
) where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Down: Send + Sync + WireMessage,
{
    let wire = wire.as_deref();
    let mut outbox: Outbox<S::Down> = Outbox::new();
    let mut downs: Vec<(Down, S::Down)> = Vec::new();
    while let Some(cmd) = rx.recv().await {
        match cmd {
            CoordCmd::Up(from, up, token) => {
                debug_assert!(outbox.is_empty());
                coordinator.on_message(from, up, &mut outbox);
                downs.extend(outbox.drain());
                for (dest, msg) in downs.drain(..) {
                    let (dest, msg) = match wire {
                        Some(link) => {
                            // One frame per routing decision: a broadcast
                            // is framed once, pre-expansion.
                            let (dest, msg, bytes) = link.down_hop(dest, msg);
                            tracer.record(TraceEventKind::WireFrame { bytes });
                            (dest, msg)
                        }
                        None => (dest, msg),
                    };
                    let msg = Arc::new(msg);
                    match dest {
                        Down::Unicast(dst) => {
                            send_down(&site_txs, dst, &msg, &pending, &dead).await
                        }
                        Down::Broadcast => {
                            for i in 0..site_txs.len() {
                                send_down(&site_txs, SiteId(i as u32), &msg, &pending, &dead).await;
                            }
                        }
                    }
                }
                drop(token);
            }
            CoordCmd::With(f) => f(&mut coordinator),
            CoordCmd::TraceSnap(reply) => {
                let _ = reply.send((tracer.snapshot(), tracer.dropped()));
            }
            CoordCmd::Stop(reply) => {
                let _ = reply.send(coordinator);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtrack_wire::{put_u64, DecodeError, WireReader};

    #[derive(Debug, Default)]
    struct CountSite {
        local: u64,
    }
    #[derive(Debug)]
    struct Inc(u64);
    #[derive(Debug)]
    struct Nudge;

    impl MessageSize for Inc {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "t/inc"
        }
    }
    impl MessageSize for Nudge {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "t/nudge"
        }
    }
    impl WireMessage for Inc {
        fn wire_encode(&self, out: &mut Vec<u8>) {
            put_u64(out, self.0);
        }
        fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
            Ok(Inc(r.u64()?))
        }
    }
    impl WireMessage for Nudge {
        fn wire_encode(&self, _out: &mut Vec<u8>) {}
        fn wire_decode(_r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
            Ok(Nudge)
        }
    }

    impl Site for CountSite {
        type Item = u64;
        type Up = Inc;
        type Down = Nudge;
        fn on_item(&mut self, item: u64, out: &mut Vec<Inc>) {
            self.local += item;
            out.push(Inc(item));
        }
        fn on_message(&mut self, _msg: &Nudge, _out: &mut Vec<Inc>) {}
    }

    #[derive(Debug, Default)]
    struct SumCoord {
        sum: u64,
        ups: u64,
    }
    impl Coordinator for SumCoord {
        type Up = Inc;
        type Down = Nudge;
        fn on_message(&mut self, _from: SiteId, msg: Inc, out: &mut Outbox<Nudge>) {
            self.sum += msg.0;
            self.ups += 1;
            if self.ups.is_multiple_of(5) {
                out.broadcast(Nudge);
            }
        }
    }

    fn two_workers() -> AsyncConfig {
        AsyncConfig {
            workers: Some(2),
            ..AsyncConfig::default()
        }
    }

    #[test]
    fn async_roundtrip_sums_and_meters() {
        let sites = (0..4).map(|_| CountSite::default()).collect();
        let cluster = AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers()).unwrap();
        assert_eq!(cluster.num_workers(), 2);
        let mut expect = 0u64;
        for i in 1..=20u64 {
            expect += i;
            cluster.feed(SiteId((i % 4) as u32), i).unwrap();
        }
        cluster.settle();
        let sum = cluster.with_coordinator(|c| c.sum).unwrap();
        assert_eq!(sum, expect);
        let meter = cluster.cost();
        assert_eq!(meter.kind("t/inc").messages, 20);
        assert_eq!(meter.kind("t/nudge").messages, 16);
        let (coord, sites, meter2) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, expect);
        assert_eq!(sites.iter().map(|s| s.local).sum::<u64>(), expect);
        assert_eq!(meter2.total_messages(), 36);
    }

    #[test]
    fn feed_batch_matches_per_item_transcript() {
        let stream: Vec<(SiteId, u64)> = (0..500u64)
            .map(|i| (SiteId(((i / 7) % 3) as u32), i))
            .collect();

        let sites = (0..3).map(|_| CountSite::default()).collect();
        let per_item = AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers()).unwrap();
        for &(site, item) in &stream {
            per_item.feed(site, item).unwrap();
            per_item.settle();
        }
        let (pc, ps, pm) = per_item.shutdown().unwrap();

        let sites = (0..3).map(|_| CountSite::default()).collect();
        let batched = AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers()).unwrap();
        batched.feed_batch(&stream).unwrap();
        let (bc, bs, bm) = batched.shutdown().unwrap();

        assert_eq!(pc.sum, bc.sum);
        assert_eq!(pc.ups, bc.ups);
        assert_eq!(
            ps.iter().map(|s| s.local).collect::<Vec<_>>(),
            bs.iter().map(|s| s.local).collect::<Vec<_>>()
        );
        assert_eq!(pm.report(), bm.report());
    }

    #[test]
    fn wire_codec_does_not_perturb_the_transcript() {
        let stream: Vec<(SiteId, u64)> = (0..400u64)
            .map(|i| (SiteId(((i / 5) % 3) as u32), i))
            .collect();
        let run = |wire: bool| {
            let sites = (0..3).map(|_| CountSite::default()).collect();
            let cluster =
                AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers().with_wire(wire))
                    .unwrap();
            cluster.feed_batch(&stream).unwrap();
            let stats = cluster.wire_stats();
            let (coord, _, meter) = cluster.shutdown().unwrap();
            (coord.sum, coord.ups, meter.report(), stats)
        };
        let (plain_sum, plain_ups, plain_report, plain_stats) = run(false);
        let (wire_sum, wire_ups, wire_report, wire_stats) = run(true);
        assert_eq!(plain_sum, wire_sum);
        assert_eq!(plain_ups, wire_ups);
        // Serialization must not perturb a single metered word.
        assert_eq!(plain_report, wire_report);
        assert!(plain_stats.is_none());
        let stats = wire_stats.expect("wire stats present when the codec is on");
        assert_eq!(stats.frames_up, 400);
        assert!(stats.frames_down > 0);
        assert!(stats.bytes_up > 0);
    }

    #[test]
    fn trace_captures_wire_frames_when_the_codec_is_on() {
        let sites = (0..2).map(|_| CountSite::default()).collect();
        let cluster =
            AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers().with_wire(true))
                .unwrap();
        cluster.set_trace(TraceConfig::on());
        for i in 1..=10u64 {
            cluster.feed(SiteId((i % 2) as u32), i).unwrap();
        }
        cluster.settle();
        let events = cluster.trace_events();
        // 10 up frames at the sites plus 2 broadcast down frames at the
        // coordinator (framed once, pre-expansion).
        let frames = events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::WireFrame { .. }))
            .count();
        assert_eq!(frames, 12);
        let down_hops = events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::DownHop { .. }))
            .count();
        assert_eq!(down_hops, 4);
        assert!(
            events
                .iter()
                .any(|e| matches!(e.lane, TraceLane::Coordinator)),
            "coordinator lane carries the down-frame events"
        );
        assert_eq!(cluster.trace_dropped(), 0);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn ingest_run_reaches_the_same_totals() {
        let sites = (0..2).map(|_| CountSite::default()).collect();
        let cluster = AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers()).unwrap();
        let t0 = cluster.ingest_run(SiteId(0), (1..=100).collect()).unwrap();
        let t1 = cluster
            .ingest_run(SiteId(1), (101..=200).collect())
            .unwrap();
        t0.wait().unwrap();
        t1.wait().unwrap();
        cluster.settle();
        let (coord, _, meter) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, (1..=200u64).sum::<u64>());
        assert_eq!(meter.kind("t/inc").messages, 200);
    }

    #[test]
    fn many_sites_multiplex_over_a_small_pool() {
        // Far more sites than workers: tasks are multiplexed, not pinned.
        let k = 64u32;
        let sites = (0..k).map(|_| CountSite::default()).collect();
        let cluster = AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers()).unwrap();
        for i in 0..256u64 {
            cluster.feed(SiteId((i % k as u64) as u32), 1).unwrap();
        }
        cluster.settle();
        let (coord, _, meter) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, 256);
        assert_eq!(meter.kind("t/inc").messages, 256);
    }

    #[test]
    fn spawn_requires_two_sites() {
        let err = AsyncCluster::spawn(vec![CountSite::default()], SumCoord::default())
            .err()
            .unwrap();
        assert_eq!(err, SimError::TooFewSites { sites: 1 });
    }

    #[test]
    fn feed_unknown_site_errors() {
        let sites = (0..2).map(|_| CountSite::default()).collect();
        let cluster = AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers()).unwrap();
        let err = cluster.feed(SiteId(5), 1).unwrap_err();
        assert_eq!(err, SimError::NoSuchSite { site: 5, sites: 2 });
        cluster.shutdown().unwrap();
    }

    #[test]
    fn killed_site_rejects_feeds_and_shutdown_stays_clean() {
        let sites = (0..4).map(|_| CountSite::default()).collect();
        let cluster = AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers()).unwrap();
        for i in 1..=4u64 {
            cluster.feed(SiteId((i % 4) as u32), i).unwrap();
        }
        cluster.settle();
        cluster.kill_site(SiteId(1)).unwrap();
        assert_eq!(
            cluster.feed(SiteId(1), 9).unwrap_err(),
            SimError::SiteDown { site: 1 }
        );
        // The 5th up triggers a broadcast; the dead site's copy is
        // dropped unmetered, so only k-1 = 3 nudges are received.
        cluster.feed(SiteId(0), 5).unwrap();
        cluster.settle();
        assert_eq!(cluster.cost().kind("t/nudge").messages, 3);
        let (coord, sites, _) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, 1 + 2 + 3 + 4 + 5);
        assert_eq!(sites.len(), 4);
    }

    #[test]
    fn stall_holds_quiescence_but_settle_terminates() {
        let sites = (0..2).map(|_| CountSite::default()).collect();
        let cluster = AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers()).unwrap();
        cluster.stall_site(SiteId(0), 20_000).unwrap();
        let t0 = std::time::Instant::now();
        cluster.settle();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        cluster.feed(SiteId(0), 1).unwrap();
        cluster.settle();
        let (coord, _, _) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, 1);
    }

    #[test]
    fn settle_deadline_times_out_on_a_stalled_site_and_recovers() {
        let sites = (0..2).map(|_| CountSite::default()).collect();
        let cluster = AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers()).unwrap();
        cluster.stall_site(SiteId(0), 300_000).unwrap();
        let err = cluster
            .settle_deadline(Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }), "{err}");
        // Still usable once the stall drains.
        cluster.settle();
        cluster.feed(SiteId(0), 2).unwrap();
        cluster.settle();
        let (coord, _, _) = cluster.shutdown().unwrap();
        assert_eq!(coord.sum, 2);
    }

    /// A site that panics on the poison value — the stand-in for a task
    /// dying mid-run. The stub executor contains the panic (worker
    /// survives, task dropped), so its queue disconnects.
    #[derive(Debug, Default)]
    struct PoisonSite;
    const POISON: u64 = u64::MAX;

    impl Site for PoisonSite {
        type Item = u64;
        type Up = Inc;
        type Down = Nudge;
        fn on_item(&mut self, item: u64, out: &mut Vec<Inc>) {
            assert!(item != POISON, "poisoned (intentional test panic)");
            out.push(Inc(item));
        }
        fn on_message(&mut self, _msg: &Nudge, _out: &mut Vec<Inc>) {}
    }

    #[test]
    fn settle_cannot_hang_after_task_death() {
        let sites = (0..2).map(|_| PoisonSite).collect();
        let cluster = AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers()).unwrap();
        cluster.feed(SiteId(0), 1).unwrap();
        cluster.settle();
        cluster.feed(SiteId(0), POISON).unwrap();
        let mut saw_error = false;
        for i in 0..10_000u64 {
            if cluster.feed(SiteId(0), i).is_err() {
                saw_error = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(saw_error, "dead task never surfaced as a feed error");
        cluster.settle();
        let err = cluster.shutdown().unwrap_err();
        assert_eq!(err, SimError::WorkerGone { who: "site" });
    }

    #[test]
    fn ingest_run_ticket_resolves_for_empty_and_dead() {
        let sites = (0..2).map(|_| CountSite::default()).collect();
        let cluster = AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers()).unwrap();
        cluster
            .ingest_run(SiteId(0), Vec::new())
            .unwrap()
            .wait()
            .unwrap();
        cluster.shutdown().unwrap();

        let sites = (0..2).map(|_| PoisonSite).collect();
        let cluster = AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers()).unwrap();
        let ticket = cluster
            .ingest_run(SiteId(0), vec![1, 2, POISON, 3])
            .unwrap();
        assert_eq!(
            ticket.wait().unwrap_err(),
            SimError::WorkerGone { who: "site" }
        );
        cluster.settle();
        assert_eq!(
            cluster.shutdown().unwrap_err(),
            SimError::WorkerGone { who: "site" }
        );
    }

    #[test]
    fn drop_without_shutdown_tears_down() {
        // Terminating is the assertion: a Drop that failed to stop the
        // tasks would leave the worker pool joining forever.
        let sites = (0..3).map(|_| CountSite::default()).collect();
        let cluster = AsyncCluster::spawn_with(sites, SumCoord::default(), two_workers()).unwrap();
        for i in 0..50u64 {
            cluster.feed(SiteId((i % 3) as u32), i).unwrap();
        }
        drop(cluster);
    }
}
