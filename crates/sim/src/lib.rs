//! # dtrack-sim — the distributed streaming model substrate
//!
//! Implements the communication model of Yi & Zhang (PODS 2009): a sequence
//! of items is observed by `k` remote *sites*, each of which has a two-way
//! channel to a designated *coordinator*. Sites never talk to each other
//! directly. Communication is instant: after an item arrives at a site, all
//! communication it triggers (including iterative coordinator-initiated
//! polls) completes before the next item arrives.
//!
//! The complexity measure is the **total number of words communicated**,
//! where one word is Θ(log u) = Θ(log n) bits; here a word is 64 bits.
//!
//! Two runtimes are provided:
//!
//! * [`Cluster`] — a deterministic, single-threaded runner that drains all
//!   triggered communication to quiescence after every arrival while
//!   metering every message. This is what the experiment harness uses: it
//!   measures exactly the quantity the paper's theorems bound.
//! * [`threaded::ThreadedCluster`] — the same protocols on real OS threads
//!   connected by `crossbeam` channels: bounded site queues with
//!   backpressure, event-based quiescence, per-thread meters, and both a
//!   transcript-identical site-at-a-time batch schedule and a free-running
//!   parallel ingest path. It demonstrates that the protocol
//!   implementations are genuinely message-driven and share no state.
//! * [`sharded::ShardedCluster`] — the scale-out runtime: many logical
//!   sites multiplexed onto a fixed work-stealing worker pool (idle
//!   workers steal whole *site-runs*, never individual items, so per-site
//!   FIFO order is preserved by construction). One process can host
//!   thousands of logical sites without one OS thread each.
//! * [`async_rt::AsyncCluster`] — the async runtime: sites as lightweight
//!   tasks on a `tokio`-style executor over a fixed worker pool, with
//!   quiescence awaited as a notified watermark and an optional
//!   length-prefixed wire codec (`dtrack-wire`) on every
//!   site↔coordinator hop.
//!
//! Protocols are written against the [`Site`] and [`Coordinator`] traits and
//! are agnostic to which runtime carries their messages.
//!
//! Both runtimes are normally reached through the [`Tracker`] facade: a
//! [`Protocol`] description plus a [`BackendKind`] build one erased handle
//! that feeds items, settles, answers typed [`Query`]s, and meters cost —
//! so application code (and the testkit's scenario drivers) never name a
//! concrete cluster type, and new backends are drop-in [`Backend`] impls.
//!
//! Every backend also carries the `dtrack-trace` structured-event layer:
//! item runs, hops, broadcasts, faults, flow-control moves, and settle
//! phases recorded into per-lane bounded rings (one relaxed-load branch
//! per event when off). Enable it with [`TraceConfig`] (or the
//! [`TRACE_ENV`] environment variable), query it via [`Query::Trace`],
//! and export Chrome `trace_event` JSON with [`Tracker::export_trace`].

pub mod api;
pub mod async_rt;
pub mod backend;
pub mod cluster;
pub mod error;
pub mod flow;
pub mod meter;
pub mod proto;
pub mod query;
pub mod sharded;
pub mod threaded;
pub mod tracker;

pub use async_rt::{AsyncCluster, AsyncConfig};
pub use backend::{
    AsyncBackend, Backend, DeterministicBackend, FaultEvent, ShardedBackend, ThreadedBackend,
};
pub use cluster::Cluster;
pub use error::SimError;
pub use flow::{AimdController, FlowControlConfig, FlowControlStats, WIN_MAX, WIN_MIN};
pub use meter::{CostReport, KindCost, MessageMeter};
pub use proto::{Coordinator, Down, MessageSize, Outbox, Site, SiteId};
pub use query::{Answer, Query, QueryError, HH_PROBE_PHIS, PROBE_PHIS};
pub use sharded::{ShardedCluster, ShardedConfig};
pub use tracker::{
    BackendKind, ErasedProtocol, Protocol, Tracker, TrackerBuilder, TrackerError, TRACE_ENV,
};

// The structured-event tracing vocabulary, re-exported so drivers and the
// testkit can consume trace streams without naming the trace crate.
pub use dtrack_trace::{
    canonical_kind_order, export_chrome, merge_snapshots, write_chrome_file, PhaseStats,
    TraceConfig, TraceEvent, TraceEventKind, TraceLane, TraceSummary,
};
