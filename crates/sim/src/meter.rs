//! Communication metering: counts messages and words, per direction and per
//! message kind.
//!
//! The paper's theorems bound the *total number of words* exchanged over the
//! whole tracking period, where a word is Θ(log u) bits. The meter tallies
//! both words and messages (the lower bound of Theorem 2.4 is in fact a
//! bound on the number of messages), and keeps a per-kind breakdown so
//! experiments can attribute cost to protocol phases (e.g. how much of the
//! heavy-hitter budget goes to `all` signals vs. item updates vs. re-sync
//! polls).

use std::collections::BTreeMap;

/// Message/word tallies for one message kind in one direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCost {
    /// Number of messages.
    pub messages: u64,
    /// Total words across those messages.
    pub words: u64,
}

impl KindCost {
    fn add(&mut self, words: u64) {
        self.messages += 1;
        self.words += words;
    }
}

/// Accumulates communication cost during a run.
#[derive(Debug, Clone, Default)]
pub struct MessageMeter {
    up: KindCost,
    down: KindCost,
    by_kind: BTreeMap<&'static str, KindCost>,
}

impl MessageMeter {
    /// A fresh meter with all tallies at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one upstream (site -> coordinator) message of `words` words.
    #[inline]
    pub fn record_up(&mut self, kind: &'static str, words: u64) {
        self.up.add(words);
        self.by_kind.entry(kind).or_default().add(words);
    }

    /// Record one downstream (coordinator -> site) message of `words` words.
    #[inline]
    pub fn record_down(&mut self, kind: &'static str, words: u64) {
        self.down.add(words);
        self.by_kind.entry(kind).or_default().add(words);
    }

    /// Total messages in both directions.
    pub fn total_messages(&self) -> u64 {
        self.up.messages + self.down.messages
    }

    /// Total words in both directions — the paper's cost measure.
    pub fn total_words(&self) -> u64 {
        self.up.words + self.down.words
    }

    /// Upstream tallies.
    pub fn up(&self) -> KindCost {
        self.up
    }

    /// Downstream tallies.
    pub fn down(&self) -> KindCost {
        self.down
    }

    /// Cost attributed to a message kind (zero if never seen).
    pub fn kind(&self, kind: &str) -> KindCost {
        self.by_kind.get(kind).copied().unwrap_or_default()
    }

    /// Snapshot of the full per-kind breakdown, sorted by kind label.
    pub fn report(&self) -> CostReport {
        CostReport {
            up: self.up,
            down: self.down,
            by_kind: self
                .by_kind
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
        }
    }

    /// Reset all tallies to zero (e.g. to exclude a warm-up phase).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// An owned snapshot of a [`MessageMeter`], suitable for storing in
/// experiment records after the run has been torn down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostReport {
    /// Upstream tallies.
    pub up: KindCost,
    /// Downstream tallies.
    pub down: KindCost,
    /// Per-kind tallies, sorted by label.
    pub by_kind: Vec<(String, KindCost)>,
}

impl CostReport {
    /// Total words in both directions.
    pub fn total_words(&self) -> u64 {
        self.up.words + self.down.words
    }

    /// Total messages in both directions.
    pub fn total_messages(&self) -> u64 {
        self.up.messages + self.down.messages
    }
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "total: {} msgs / {} words (up {}/{}, down {}/{})",
            self.total_messages(),
            self.total_words(),
            self.up.messages,
            self.up.words,
            self.down.messages,
            self.down.words,
        )?;
        for (kind, c) in &self.by_kind {
            writeln!(
                f,
                "  {kind:<24} {:>10} msgs {:>12} words",
                c.messages, c.words
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_accumulate_per_direction() {
        let mut m = MessageMeter::new();
        m.record_up("a", 2);
        m.record_up("a", 3);
        m.record_down("b", 1);
        assert_eq!(
            m.up(),
            KindCost {
                messages: 2,
                words: 5
            }
        );
        assert_eq!(
            m.down(),
            KindCost {
                messages: 1,
                words: 1
            }
        );
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_words(), 6);
    }

    #[test]
    fn kind_breakdown() {
        let mut m = MessageMeter::new();
        m.record_up("x/update", 2);
        m.record_down("x/update", 2);
        m.record_up("x/sync", 1);
        assert_eq!(
            m.kind("x/update"),
            KindCost {
                messages: 2,
                words: 4
            }
        );
        assert_eq!(
            m.kind("x/sync"),
            KindCost {
                messages: 1,
                words: 1
            }
        );
        assert_eq!(m.kind("missing"), KindCost::default());
    }

    #[test]
    fn report_snapshot_matches_meter() {
        let mut m = MessageMeter::new();
        m.record_up("u", 4);
        m.record_down("d", 6);
        let r = m.report();
        assert_eq!(r.total_words(), m.total_words());
        assert_eq!(r.total_messages(), m.total_messages());
        assert_eq!(r.by_kind.len(), 2);
        // Sorted by label.
        assert_eq!(r.by_kind[0].0, "d");
        assert_eq!(r.by_kind[1].0, "u");
        let text = r.to_string();
        assert!(text.contains("total: 2 msgs / 10 words"));
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = MessageMeter::new();
        m.record_up("u", 4);
        m.reset();
        assert_eq!(m.total_words(), 0);
        assert_eq!(m.report().by_kind.len(), 0);
    }
}
