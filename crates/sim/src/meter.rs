//! Communication metering: counts messages and words, per direction and per
//! message kind.
//!
//! The paper's theorems bound the *total number of words* exchanged over the
//! whole tracking period, where a word is Θ(log u) bits. The meter tallies
//! both words and messages (the lower bound of Theorem 2.4 is in fact a
//! bound on the number of messages), and keeps a per-kind breakdown so
//! experiments can attribute cost to protocol phases (e.g. how much of the
//! heavy-hitter budget goes to `all` signals vs. item updates vs. re-sync
//! polls).
//!
//! ## Hot-path design
//!
//! `record_up`/`record_down` run once per metered hop — tens of millions of
//! times in a large scenario — so the per-kind breakdown must not cost a
//! tree walk per message. Kinds are interned into a small array-backed
//! registry on first sight; after that a record is two array adds. Kind
//! labels are `&'static str` literals, so the fast path resolves the index
//! by *pointer* identity (one `(addr, len)` compare against a one-entry
//! cache, then a short linear scan), falling back to a by-value scan only
//! when a label reaches us through a different literal address. Interning
//! order is arrival order; [`MessageMeter::report`] sorts by label so the
//! rendered breakdown stays deterministic regardless of which message kind
//! happened to arrive first.

/// Message/word tallies for one message kind in one direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCost {
    /// Number of messages.
    pub messages: u64,
    /// Total words across those messages.
    pub words: u64,
}

impl KindCost {
    #[inline]
    fn add(&mut self, words: u64) {
        self.messages += 1;
        self.words += words;
    }
}

/// Interned identity of a `&'static str` kind label: data address + length.
/// Stored as plain integers so the meter stays `Send` (raw pointers would
/// drop the auto trait, and the threaded runtime shares the meter behind a
/// mutex).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LabelKey {
    addr: usize,
    len: usize,
}

impl LabelKey {
    #[inline]
    fn of(s: &'static str) -> Self {
        LabelKey {
            addr: s.as_ptr() as usize,
            len: s.len(),
        }
    }
}

/// Accumulates communication cost during a run.
#[derive(Debug, Clone, Default)]
pub struct MessageMeter {
    up: KindCost,
    down: KindCost,
    /// Interned kind labels, in interning (first-seen) order.
    kinds: Vec<&'static str>,
    /// Pointer identities parallel to `kinds` (fast-path resolution).
    keys: Vec<LabelKey>,
    /// Per-kind tallies parallel to `kinds`.
    by_kind: Vec<KindCost>,
    /// One-entry most-recently-used cache: (label identity, index).
    mru: Option<(LabelKey, usize)>,
}

impl MessageMeter {
    /// A fresh meter with all tallies at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve `kind` to its registry index, interning it on first sight.
    #[inline]
    fn kind_index(&mut self, kind: &'static str) -> usize {
        let key = LabelKey::of(kind);
        if let Some((k, i)) = self.mru {
            if k == key {
                return i;
            }
        }
        let i = self.kind_index_slow(key, kind);
        self.mru = Some((key, i));
        i
    }

    #[cold]
    fn kind_index_slow(&mut self, key: LabelKey, kind: &'static str) -> usize {
        // Pointer-identity scan first: literals resolve without touching
        // string bytes. Registries hold a handful of kinds, so linear is
        // faster than any hashed structure here.
        if let Some(i) = self.keys.iter().position(|&k| k == key) {
            return i;
        }
        // Same label text via a different literal address (possible across
        // codegen units): merge by value so the report never splits a kind.
        if let Some(i) = self.kinds.iter().position(|&k| k == kind) {
            return i;
        }
        self.kinds.push(kind);
        self.keys.push(key);
        self.by_kind.push(KindCost::default());
        self.kinds.len() - 1
    }

    /// Record one upstream (site -> coordinator) message of `words` words.
    #[inline]
    pub fn record_up(&mut self, kind: &'static str, words: u64) {
        self.up.add(words);
        let i = self.kind_index(kind);
        self.by_kind[i].add(words);
    }

    /// Record one downstream (coordinator -> site) message of `words` words.
    #[inline]
    pub fn record_down(&mut self, kind: &'static str, words: u64) {
        self.down.add(words);
        let i = self.kind_index(kind);
        self.by_kind[i].add(words);
    }

    /// Total messages in both directions.
    pub fn total_messages(&self) -> u64 {
        self.up.messages + self.down.messages
    }

    /// Total words in both directions — the paper's cost measure.
    pub fn total_words(&self) -> u64 {
        self.up.words + self.down.words
    }

    /// Upstream tallies.
    pub fn up(&self) -> KindCost {
        self.up
    }

    /// Downstream tallies.
    pub fn down(&self) -> KindCost {
        self.down
    }

    /// Cost attributed to a message kind (zero if never seen).
    pub fn kind(&self, kind: &str) -> KindCost {
        self.kinds
            .iter()
            .position(|&k| k == kind)
            .map(|i| self.by_kind[i])
            .unwrap_or_default()
    }

    /// Snapshot of the full per-kind breakdown, sorted by kind label.
    ///
    /// The registry stores kinds in first-seen order, which depends on the
    /// message schedule; sorting here keeps the report (and everything
    /// diffed against it) independent of interning order. The ordering is
    /// [`dtrack_trace::canonical_kind_order`] — the same one
    /// `TraceSummary` sorts with, so meter and trace breakdowns can never
    /// disagree on label order.
    pub fn report(&self) -> CostReport {
        let mut by_kind: Vec<(String, KindCost)> = self
            .kinds
            .iter()
            .zip(&self.by_kind)
            .map(|(k, v)| ((*k).to_owned(), *v))
            .collect();
        by_kind.sort_unstable_by(|a, b| dtrack_trace::canonical_kind_order(&a.0, &b.0));
        CostReport {
            up: self.up,
            down: self.down,
            by_kind,
        }
    }

    /// Fold another meter's tallies into this one, matching kinds by
    /// label (by pointer identity when possible, by value otherwise — two
    /// threads metering the same kind through different literal addresses
    /// still land in one entry).
    ///
    /// This is how the threaded runtime aggregates its per-thread meters:
    /// each worker tallies locally with zero sharing, and the runtime
    /// merges on snapshot/shutdown.
    pub fn merge(&mut self, other: &MessageMeter) {
        self.up.messages += other.up.messages;
        self.up.words += other.up.words;
        self.down.messages += other.down.messages;
        self.down.words += other.down.words;
        for (&kind, cost) in other.kinds.iter().zip(&other.by_kind) {
            let i = self.kind_index(kind);
            self.by_kind[i].messages += cost.messages;
            self.by_kind[i].words += cost.words;
        }
    }

    /// Reset all tallies to zero (e.g. to exclude a warm-up phase).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// An owned snapshot of a [`MessageMeter`], suitable for storing in
/// experiment records after the run has been torn down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostReport {
    /// Upstream tallies.
    pub up: KindCost,
    /// Downstream tallies.
    pub down: KindCost,
    /// Per-kind tallies, sorted by label.
    pub by_kind: Vec<(String, KindCost)>,
}

impl CostReport {
    /// Total words in both directions.
    pub fn total_words(&self) -> u64 {
        self.up.words + self.down.words
    }

    /// Total messages in both directions.
    pub fn total_messages(&self) -> u64 {
        self.up.messages + self.down.messages
    }
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "total: {} msgs / {} words (up {}/{}, down {}/{})",
            self.total_messages(),
            self.total_words(),
            self.up.messages,
            self.up.words,
            self.down.messages,
            self.down.words,
        )?;
        for (kind, c) in &self.by_kind {
            writeln!(
                f,
                "  {kind:<24} {:>10} msgs {:>12} words",
                c.messages, c.words
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_accumulate_per_direction() {
        let mut m = MessageMeter::new();
        m.record_up("a", 2);
        m.record_up("a", 3);
        m.record_down("b", 1);
        assert_eq!(
            m.up(),
            KindCost {
                messages: 2,
                words: 5
            }
        );
        assert_eq!(
            m.down(),
            KindCost {
                messages: 1,
                words: 1
            }
        );
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_words(), 6);
    }

    #[test]
    fn kind_breakdown() {
        let mut m = MessageMeter::new();
        m.record_up("x/update", 2);
        m.record_down("x/update", 2);
        m.record_up("x/sync", 1);
        assert_eq!(
            m.kind("x/update"),
            KindCost {
                messages: 2,
                words: 4
            }
        );
        assert_eq!(
            m.kind("x/sync"),
            KindCost {
                messages: 1,
                words: 1
            }
        );
        assert_eq!(m.kind("missing"), KindCost::default());
    }

    #[test]
    fn report_snapshot_matches_meter() {
        let mut m = MessageMeter::new();
        m.record_up("u", 4);
        m.record_down("d", 6);
        let r = m.report();
        assert_eq!(r.total_words(), m.total_words());
        assert_eq!(r.total_messages(), m.total_messages());
        assert_eq!(r.by_kind.len(), 2);
        // Sorted by label.
        assert_eq!(r.by_kind[0].0, "d");
        assert_eq!(r.by_kind[1].0, "u");
        let text = r.to_string();
        assert!(text.contains("total: 2 msgs / 10 words"));
    }

    #[test]
    fn report_order_independent_of_interning_order() {
        // Same tallies recorded in opposite kind order must render the
        // same sorted report, even though the array registry interned the
        // kinds differently.
        let mut fwd = MessageMeter::new();
        fwd.record_up("hh/all", 2);
        fwd.record_up("hh/item", 3);
        fwd.record_down("hh/new-count", 2);
        let mut rev = MessageMeter::new();
        rev.record_down("hh/new-count", 2);
        rev.record_up("hh/item", 3);
        rev.record_up("hh/all", 2);
        assert_eq!(fwd.report(), rev.report());
        let report = fwd.report();
        let labels: Vec<&str> = report.by_kind.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(labels, sorted);
    }

    #[test]
    fn duplicate_label_text_merges() {
        // The same label text arriving via different `&'static str`
        // addresses must land in one registry entry. Leaked boxes give us
        // two distinct addresses with identical bytes.
        let a: &'static str = Box::leak("dup/kind".to_owned().into_boxed_str());
        let b: &'static str = Box::leak("dup/kind".to_owned().into_boxed_str());
        assert_ne!(a.as_ptr(), b.as_ptr());
        let mut m = MessageMeter::new();
        m.record_up(a, 1);
        m.record_up(b, 2);
        assert_eq!(
            m.kind("dup/kind"),
            KindCost {
                messages: 2,
                words: 3
            }
        );
        assert_eq!(m.report().by_kind.len(), 1);
    }

    #[test]
    fn mru_cache_survives_alternating_kinds() {
        let mut m = MessageMeter::new();
        for _ in 0..1000 {
            m.record_up("alt/a", 1);
            m.record_down("alt/b", 2);
        }
        assert_eq!(m.kind("alt/a").messages, 1000);
        assert_eq!(m.kind("alt/b").words, 2000);
    }

    #[test]
    fn merge_folds_totals_and_kinds() {
        let mut a = MessageMeter::new();
        a.record_up("m/item", 2);
        a.record_down("m/ack", 1);
        let mut b = MessageMeter::new();
        b.record_up("m/item", 3);
        b.record_up("m/poll", 5);
        a.merge(&b);
        assert_eq!(
            a.kind("m/item"),
            KindCost {
                messages: 2,
                words: 5
            }
        );
        assert_eq!(
            a.kind("m/poll"),
            KindCost {
                messages: 1,
                words: 5
            }
        );
        assert_eq!(a.total_messages(), 4);
        assert_eq!(a.total_words(), 11);
        assert_eq!(
            a.up(),
            KindCost {
                messages: 3,
                words: 10
            }
        );
    }

    #[test]
    fn merge_matches_sequential_recording() {
        // Splitting a message sequence across two meters and merging must
        // equal recording the whole sequence on one meter.
        let mut whole = MessageMeter::new();
        let mut left = MessageMeter::new();
        let mut right = MessageMeter::new();
        for i in 0..100u64 {
            let (kind, words) = match i % 3 {
                0 => ("s/a", 1),
                1 => ("s/b", 2),
                _ => ("s/c", 3),
            };
            whole.record_up(kind, words);
            if i < 50 {
                left.record_up(kind, words);
            } else {
                right.record_up(kind, words);
            }
        }
        left.merge(&right);
        assert_eq!(left.report(), whole.report());
    }

    #[test]
    fn merge_unifies_duplicate_label_addresses() {
        let a: &'static str = Box::leak("merge/dup".to_owned().into_boxed_str());
        let b: &'static str = Box::leak("merge/dup".to_owned().into_boxed_str());
        let mut m1 = MessageMeter::new();
        m1.record_up(a, 1);
        let mut m2 = MessageMeter::new();
        m2.record_down(b, 2);
        m1.merge(&m2);
        assert_eq!(m1.report().by_kind.len(), 1);
        assert_eq!(
            m1.kind("merge/dup"),
            KindCost {
                messages: 2,
                words: 3
            }
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = MessageMeter::new();
        m.record_up("u", 4);
        m.reset();
        assert_eq!(m.total_words(), 0);
        assert_eq!(m.report().by_kind.len(), 0);
    }

    #[test]
    fn meter_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<MessageMeter>();
    }
}
