//! Protocol traits: how sites and the coordinator exchange messages.
//!
//! A tracking protocol is a pair of state machines:
//!
//! * a **site** reacts to item arrivals and to downstream messages from the
//!   coordinator, emitting upstream messages;
//! * the **coordinator** reacts to upstream messages, emitting downstream
//!   messages (unicast or broadcast).
//!
//! Sites must never initiate communication spontaneously: every upstream
//! message is a reaction to an arrival or a downstream message, matching the
//! model in the paper (and the premise of the Lemma 2.3 lower bound).

/// Identifier of a remote site, in `0..k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The site index as a usize, for indexing site vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Every protocol message reports its size in 64-bit words and a static
/// label used for cost breakdowns in the experiment harness.
///
/// The paper measures communication in words of Θ(log u) = Θ(log n) bits;
/// a message of constant size is O(1) words.
pub trait MessageSize {
    /// Size of this message in 64-bit words (>= 1: even a bare signal
    /// occupies a word on the wire).
    fn size_words(&self) -> u64;

    /// A short static label naming the message class, e.g. `"hh/all"`.
    fn kind(&self) -> &'static str;
}

/// A site-side protocol state machine.
pub trait Site {
    /// The item type observed by sites (usually `u64`).
    type Item;
    /// Upstream message type (site -> coordinator).
    type Up: MessageSize;
    /// Downstream message type (coordinator -> site).
    type Down: MessageSize;

    /// An item has arrived at this site. Push any triggered upstream
    /// messages into `out`.
    fn on_item(&mut self, item: Self::Item, out: &mut Vec<Self::Up>);

    /// A run of consecutive items has arrived at this site. Consume a
    /// prefix of `items`, pushing any triggered upstream messages into
    /// `out`, and return how many items were consumed (at least 1 when
    /// `items` is nonempty).
    ///
    /// **Contract:** `out` is empty on entry, and the site must stop
    /// consuming as soon as it has pushed at least one message — the
    /// runtime then plays all triggered communication to quiescence before
    /// offering the rest of the run, so coordinator replies (new
    /// thresholds, re-syncs) land between items exactly as in per-item
    /// [`Site::on_item`] delivery. Implementations may override this to
    /// swallow provably quiet stretches in O(1) (see `CounterSite`), but
    /// must stay *transcript-identical* to the per-item path: the
    /// differential harness pins metered words bit-for-bit.
    ///
    /// The default simply replays `on_item` and stops after the first item
    /// that emits traffic.
    fn on_items(&mut self, items: &[Self::Item], out: &mut Vec<Self::Up>) -> usize
    where
        Self::Item: Clone,
    {
        debug_assert!(out.is_empty());
        for (i, item) in items.iter().enumerate() {
            self.on_item(item.clone(), out);
            if !out.is_empty() {
                return i + 1;
            }
        }
        items.len()
    }

    /// A downstream message has arrived from the coordinator. Push any
    /// triggered upstream messages (e.g. poll replies) into `out`.
    fn on_message(&mut self, msg: &Self::Down, out: &mut Vec<Self::Up>);
}

/// Destination of a downstream message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Down {
    /// Send to one site.
    Unicast(SiteId),
    /// Send to every site; metered as k separate messages, matching the
    /// paper's accounting of a broadcast as k words.
    Broadcast,
}

/// Buffer of downstream messages produced by one coordinator step.
#[derive(Debug)]
pub struct Outbox<D> {
    pub(crate) msgs: Vec<(Down, D)>,
}

impl<D> Default for Outbox<D> {
    fn default() -> Self {
        Outbox { msgs: Vec::new() }
    }
}

impl<D> Outbox<D> {
    /// Create an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a unicast message to `site`.
    #[inline]
    pub fn unicast(&mut self, site: SiteId, msg: D) {
        self.msgs.push((Down::Unicast(site), msg));
    }

    /// Queue a broadcast to all sites.
    #[inline]
    pub fn broadcast(&mut self, msg: D) {
        self.msgs.push((Down::Broadcast, msg));
    }

    /// Number of queued directives (a broadcast counts once here; the
    /// runtime expands and meters it as k messages).
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Drain the queued messages.
    pub fn drain(&mut self) -> impl Iterator<Item = (Down, D)> + '_ {
        self.msgs.drain(..)
    }
}

/// The coordinator-side protocol state machine.
pub trait Coordinator {
    /// Upstream message type (site -> coordinator).
    type Up: MessageSize;
    /// Downstream message type (coordinator -> site).
    type Down: MessageSize;

    /// An upstream message from `from` has arrived. Queue any downstream
    /// messages on `out`.
    fn on_message(&mut self, from: SiteId, msg: Self::Up, out: &mut Outbox<Self::Down>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ping;
    impl MessageSize for Ping {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "ping"
        }
    }

    #[test]
    fn site_id_display_and_index() {
        let s = SiteId(3);
        assert_eq!(s.to_string(), "S3");
        assert_eq!(s.index(), 3);
    }

    #[test]
    fn outbox_collects_and_drains() {
        let mut out: Outbox<Ping> = Outbox::new();
        assert!(out.is_empty());
        out.unicast(SiteId(1), Ping);
        out.broadcast(Ping);
        assert_eq!(out.len(), 2);
        let drained: Vec<_> = out.drain().collect();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, Down::Unicast(SiteId(1)));
        assert_eq!(drained[1].0, Down::Broadcast);
        assert!(out.is_empty());
    }
}
