//! The [`Tracker`] facade: one runtime-agnostic handle over any tracking
//! protocol on any backend.
//!
//! ```text
//! let mut tracker = Tracker::builder()
//!     .sites(k)
//!     .protocol(some_protocol)          // anything implementing Protocol
//!     .backend(BackendKind::Threaded)   // or Deterministic (the default)
//!     .build()?;
//! tracker.feed_batch(&stream)?;
//! let hh = tracker.query(Query::HeavyHitters { phi: 0.05 })?;
//! let meter = tracker.finish()?;
//! ```
//!
//! ## Layering
//!
//! * [`Protocol`] is the *typed* description of one protocol: how to
//!   construct its sites and coordinator, and how to answer [`Query`]s
//!   against the coordinator. Implementations live next to each protocol
//!   (`dtrack-core`, `dtrack-baseline`); the testkit's registry maps its
//!   `ProtocolSpec` matrix axis onto them in exactly one table.
//! * [`crate::Backend`] is the *typed* runtime surface (deterministic or
//!   threaded today; async/sharded backends are drop-in).
//! * [`ErasedProtocol`] is the object-safe product of the two, and
//!   [`Tracker`] is a plain struct wrapping `Box<dyn ErasedProtocol>` so
//!   callers never see a type parameter.
//!
//! ## Object-safety choices
//!
//! `Protocol` and `Backend` are deliberately *not* object-safe: protocol
//! message types differ per protocol, and `Backend::with_coordinator` is
//! generic over the closure result. Erasure therefore happens **above**
//! both traits, in the private `Bound` adapter, where items are pinned to
//! `u64` (the paper's word-sized universe) and coordinator access is
//! narrowed to the [`Query`] → [`Answer`] algebra, which *is* object-safe.
//! Messages themselves are never boxed — inside a `Bound` the site, the
//! coordinator, and the channel payloads are all concrete types — so the
//! facade costs one virtual call per *batch/query*, not per message, and
//! the metered transcript is bit-identical to driving the clusters
//! directly.

#![deny(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

use dtrack_trace::{write_chrome_file, TraceConfig, TraceEvent, TraceSummary};

use crate::async_rt::AsyncConfig;
use crate::backend::{
    AsyncBackend, Backend, DeterministicBackend, FaultEvent, ShardedBackend, ThreadedBackend,
};
use crate::error::SimError;
use crate::flow::FlowControlConfig;
use crate::meter::MessageMeter;
use crate::proto::{Coordinator, MessageSize, Site, SiteId};
use crate::query::{Answer, Query, QueryError};
use crate::sharded::ShardedConfig;
use crate::threaded::SITE_QUEUE_CAP;

/// A typed description of one tracking protocol: construction plus the
/// query surface over its coordinator.
///
/// The bounds make every protocol runnable on every backend (the
/// threaded runtime needs `Send` state machines and `Send + Sync`
/// downstream messages; the async backend additionally requires both
/// message types to carry a [`dtrack_wire::WireMessage`] codec so a
/// tracker can opt into the framed wire path); `Clone` lets the facade
/// carry the description into backend threads for queries.
pub trait Protocol: Clone + Send + Sync + 'static {
    /// Site state machine (items are pinned to `u64`, the paper's
    /// word-sized universe).
    type Site: Site<Item = u64, Up = Self::Up, Down = Self::Down> + Send + 'static;
    /// Upstream message type.
    type Up: MessageSize + dtrack_wire::WireMessage + Send + 'static;
    /// Downstream message type.
    type Down: MessageSize + dtrack_wire::WireMessage + Send + Sync + 'static;
    /// Coordinator state machine.
    type Coordinator: Coordinator<Up = Self::Up, Down = Self::Down> + Send + 'static;

    /// Short stable label (e.g. `"hh-exact"`), used in reports and
    /// error messages.
    fn label(&self) -> &'static str;

    /// The site count this description already fixes (protocols whose
    /// config embeds k), if any. The builder cross-checks it against
    /// [`TrackerBuilder::sites`].
    fn sites_hint(&self) -> Option<u32> {
        None
    }

    /// Construct the `k` site state machines and the coordinator.
    fn build(&self, k: u32) -> Result<(Vec<Self::Site>, Self::Coordinator), String>;

    /// Answer one typed query against a quiescent coordinator.
    fn query(&self, coordinator: &Self::Coordinator, query: Query) -> Result<Answer, QueryError>;

    /// The protocol's canonical final-answer set, in canonical order.
    /// Rendering each answer with `Display` reproduces the legacy
    /// transcript strings the equivalence suites compare.
    fn answers(&self, coordinator: &Self::Coordinator) -> Result<Vec<Answer>, QueryError>;

    /// Convenience for [`Protocol::query`] implementations: the canonical
    /// "not answerable by this protocol" error.
    fn unsupported(&self, query: Query) -> QueryError {
        QueryError::Unsupported {
            protocol: self.label(),
            query,
        }
    }
}

/// Which runtime a [`Tracker`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Single-threaded, transcript-pinned (wraps [`crate::Cluster`]).
    #[default]
    Deterministic,
    /// One OS thread per site plus a coordinator thread (wraps
    /// [`crate::threaded::ThreadedCluster`]).
    Threaded,
    /// A fixed work-stealing worker pool multiplexing any number of
    /// logical sites (wraps [`crate::sharded::ShardedCluster`]) — the
    /// runtime for site counts far past the core count.
    Sharded {
        /// Worker threads; `None` means one per available core.
        workers: Option<usize>,
    },
    /// Sites as lightweight async tasks on a fixed-size executor (wraps
    /// [`crate::async_rt::AsyncCluster`]), optionally running every
    /// site↔coordinator hop through the `dtrack-wire` framed codec.
    Async {
        /// Executor worker threads; `None` means one per available core.
        workers: Option<usize>,
        /// Route every message through the length-prefixed wire codec
        /// (encode → frame → decode on each hop). The decoded message is
        /// bit-identical to the original, so the metered transcript is
        /// unchanged; only [`crate::async_rt::AsyncCluster::wire_stats`]
        /// observes the difference.
        wire: bool,
    },
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendKind::Deterministic => write!(f, "deterministic"),
            BackendKind::Threaded => write!(f, "threaded"),
            BackendKind::Sharded { workers: None } => write!(f, "sharded"),
            BackendKind::Sharded {
                workers: Some(workers),
            } => write!(f, "sharded({workers})"),
            BackendKind::Async { workers, wire } => {
                match workers {
                    Some(workers) => write!(f, "async({workers})")?,
                    None => write!(f, "async")?,
                }
                if *wire {
                    write!(f, "+wire")?;
                }
                Ok(())
            }
        }
    }
}

/// Why a [`Tracker`] could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum TrackerError {
    /// The protocol rejected its construction parameters.
    Protocol(String),
    /// No site count: neither [`TrackerBuilder::sites`] nor the
    /// protocol's [`Protocol::sites_hint`] provided k.
    MissingSiteCount,
    /// [`TrackerBuilder::sites`] disagrees with the protocol's embedded
    /// site count.
    SiteCountMismatch {
        /// k requested via the builder.
        requested: u32,
        /// k embedded in the protocol configuration.
        embedded: u32,
    },
    /// A builder knob was set to a value that cannot work (zero workers,
    /// zero queue capacity, a zero deadline, malformed flow-control
    /// bounds). Caught at [`TrackerBuilder::build`] as a typed error
    /// instead of panicking (or wedging) inside backend spawn.
    InvalidConfig {
        /// The offending builder knob.
        knob: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// The runtime failed to start.
    Sim(SimError),
}

impl fmt::Display for TrackerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrackerError::Protocol(detail) => write!(f, "protocol construction failed: {detail}"),
            TrackerError::MissingSiteCount => {
                write!(
                    f,
                    "no site count: call .sites(k) or use a protocol that embeds k"
                )
            }
            TrackerError::SiteCountMismatch {
                requested,
                embedded,
            } => write!(
                f,
                "builder asked for {requested} sites but the protocol config embeds {embedded}"
            ),
            TrackerError::InvalidConfig { knob, detail } => {
                write!(f, "invalid tracker configuration ({knob}): {detail}")
            }
            TrackerError::Sim(e) => write!(f, "runtime failed to start: {e}"),
        }
    }
}

impl std::error::Error for TrackerError {}

impl From<SimError> for TrackerError {
    fn from(e: SimError) -> Self {
        TrackerError::Sim(e)
    }
}

/// The object-safe protocol-on-backend surface [`Tracker`] wraps.
///
/// This is the erased layer: items are `u64`, coordinator access is the
/// [`Query`] algebra, teardown returns only the meter. Implemented once,
/// generically, for every ([`Protocol`], [`Backend`]) pair — protocol
/// and backend authors never touch it.
pub trait ErasedProtocol: Send {
    /// Protocol label (see [`Protocol::label`]).
    fn label(&self) -> &'static str;
    /// See [`Backend::feed`].
    fn feed(&mut self, site: SiteId, item: u64) -> Result<(), SimError>;
    /// See [`Backend::feed_batch`].
    fn feed_batch(&mut self, batch: &[(SiteId, u64)]) -> Result<(), SimError>;
    /// See [`Backend::ingest`].
    fn ingest(&mut self, site: SiteId, items: Vec<u64>) -> Result<(), SimError>;
    /// See [`Backend::settle`].
    fn settle(&mut self);
    /// See [`Backend::settle_deadline`].
    fn settle_deadline(&mut self, deadline: Duration) -> Result<(), SimError>;
    /// See [`Backend::cost_hint`].
    fn cost_hint(&mut self, words_per_item: f64);
    /// See [`Backend::inject_fault`].
    fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), SimError>;
    /// Settle, then answer one typed query.
    fn query(&mut self, query: Query) -> Result<Answer, QueryError>;
    /// Settle, then produce the canonical final-answer set.
    fn answers(&mut self) -> Result<Vec<Answer>, QueryError>;
    /// See [`Backend::set_trace`].
    fn set_trace(&mut self, config: TraceConfig);
    /// Settle, then snapshot the merged clock-ordered trace stream (see
    /// [`Backend::trace_events`]).
    fn trace_events(&mut self) -> Vec<TraceEvent>;
    /// See [`Backend::trace_dropped`].
    fn trace_dropped(&mut self) -> u64;
    /// See [`Backend::cost`].
    fn cost(&mut self) -> MessageMeter;
    /// Tear down, returning the final merged meter.
    fn finish(self: Box<Self>) -> Result<MessageMeter, SimError>;
}

/// The generic (protocol, backend) pairing behind `Box<dyn ErasedProtocol>`.
struct Bound<P, B> {
    protocol: P,
    backend: B,
    /// Quiescence deadline for queries/answers (from
    /// [`TrackerBuilder::settle_deadline`]); `None` waits unboundedly.
    deadline: Option<Duration>,
}

impl<P, B> Bound<P, B>
where
    P: Protocol,
    B: Backend<P::Site, P::Coordinator> + Send,
{
    /// Reach quiescence before a query: bounded by the configured
    /// deadline when one is set, so a stalled site degrades the query to
    /// an error instead of parking the caller forever.
    fn quiesce(&mut self) -> Result<(), SimError> {
        match self.deadline {
            Some(deadline) => self.backend.settle_deadline(deadline),
            None => {
                self.backend.settle();
                Ok(())
            }
        }
    }
}

impl<P, B> ErasedProtocol for Bound<P, B>
where
    P: Protocol,
    B: Backend<P::Site, P::Coordinator> + Send,
{
    fn label(&self) -> &'static str {
        self.protocol.label()
    }

    fn feed(&mut self, site: SiteId, item: u64) -> Result<(), SimError> {
        self.backend.feed(site, item)
    }

    fn feed_batch(&mut self, batch: &[(SiteId, u64)]) -> Result<(), SimError> {
        self.backend.feed_batch(batch)
    }

    fn ingest(&mut self, site: SiteId, items: Vec<u64>) -> Result<(), SimError> {
        self.backend.ingest(site, items)
    }

    fn settle(&mut self) {
        self.backend.settle();
    }

    fn settle_deadline(&mut self, deadline: Duration) -> Result<(), SimError> {
        self.backend.settle_deadline(deadline)
    }

    fn cost_hint(&mut self, words_per_item: f64) {
        self.backend.cost_hint(words_per_item);
    }

    fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), SimError> {
        self.backend.inject_fault(fault)
    }

    fn query(&mut self, query: Query) -> Result<Answer, QueryError> {
        self.quiesce().map_err(QueryError::Runtime)?;
        // Flow control describes the runtime, not the protocol: answer it
        // here, before protocol dispatch.
        if matches!(query, Query::FlowControl) {
            return match self.backend.flow_control() {
                Some(stats) => Ok(Answer::FlowControl(stats)),
                None => Err(QueryError::Unsupported {
                    protocol: self.protocol.label(),
                    query,
                }),
            };
        }
        // So does tracing: the summary reads the runtime's event rings,
        // never the coordinator. Answerable on every backend; with
        // tracing off it is simply empty.
        if matches!(query, Query::Trace) {
            let events = self.backend.trace_events();
            let dropped = self.backend.trace_dropped();
            return Ok(Answer::Trace(TraceSummary::from_events(&events, dropped)));
        }
        let protocol = self.protocol.clone();
        self.backend
            .with_coordinator(move |c| protocol.query(c, query))
            .map_err(QueryError::Runtime)?
    }

    fn answers(&mut self) -> Result<Vec<Answer>, QueryError> {
        self.quiesce().map_err(QueryError::Runtime)?;
        let protocol = self.protocol.clone();
        self.backend
            .with_coordinator(move |c| protocol.answers(c))
            .map_err(QueryError::Runtime)?
    }

    fn set_trace(&mut self, config: TraceConfig) {
        self.backend.set_trace(config);
    }

    fn trace_events(&mut self) -> Vec<TraceEvent> {
        // Quiesce best-effort so the snapshot is complete; a timeout
        // still yields whatever the rings hold (tracing is diagnostic,
        // not transactional).
        let _ = self.quiesce();
        self.backend.trace_events()
    }

    fn trace_dropped(&mut self) -> u64 {
        self.backend.trace_dropped()
    }

    fn cost(&mut self) -> MessageMeter {
        self.backend.cost()
    }

    fn finish(self: Box<Self>) -> Result<MessageMeter, SimError> {
        let (_coordinator, _sites, meter) = self.backend.finish()?;
        Ok(meter)
    }
}

/// Environment variable steering tracing without a code change:
/// `DTRACK_TRACE=on` enables in-memory tracing, `DTRACK_TRACE=off` (or
/// empty/`0`) forces it off, and `DTRACK_TRACE=chrome:<path>` enables it
/// *and* exports a Chrome `trace_event` JSON file at [`Tracker::finish`].
/// An explicit [`TrackerBuilder::trace`] call wins over the environment.
pub const TRACE_ENV: &str = "DTRACK_TRACE";

/// Parse [`TRACE_ENV`]: the config it implies (if set at all) and the
/// Chrome export path (if one was requested).
fn trace_from_env() -> (Option<TraceConfig>, Option<PathBuf>) {
    match std::env::var(TRACE_ENV) {
        Ok(value) => {
            let value = value.trim();
            if value.is_empty() || value == "0" || value.eq_ignore_ascii_case("off") {
                (Some(TraceConfig::off()), None)
            } else if let Some(path) = value.strip_prefix("chrome:") {
                (Some(TraceConfig::on()), Some(PathBuf::from(path)))
            } else {
                (Some(TraceConfig::on()), None)
            }
        }
        Err(_) => (None, None),
    }
}

/// Builder for [`Tracker`] (start with [`Tracker::builder`]).
#[derive(Debug, Clone, Default)]
pub struct TrackerBuilder<P = ()> {
    sites: Option<u32>,
    backend: BackendKind,
    queue_cap: Option<usize>,
    flow: Option<FlowControlConfig>,
    deadline: Option<Duration>,
    trace: Option<TraceConfig>,
    protocol: P,
}

impl<P> TrackerBuilder<P> {
    /// Number of sites k (may be omitted when the protocol's config
    /// embeds k; must agree with it when both are given).
    pub fn sites(mut self, k: u32) -> Self {
        self.sites = Some(k);
        self
    }

    /// Which runtime carries the messages (default:
    /// [`BackendKind::Deterministic`]).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Per-site command-queue capacity for the parallel backends
    /// (threaded and sharded; the deterministic backend has no queues).
    /// Default: [`crate::threaded::SITE_QUEUE_CAP`]. Deeper queues absorb
    /// burstier feeders before `feed` blocks; shallower queues bound
    /// memory and feedback staleness more tightly.
    pub fn site_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap);
        self
    }

    /// Free-running flow-control configuration for the parallel backends
    /// (see [`FlowControlConfig`]; default: the adaptive default config).
    /// The deterministic backend needs no flow control and ignores this.
    /// Validated at [`TrackerBuilder::build`].
    pub fn flow_control(mut self, config: FlowControlConfig) -> Self {
        self.flow = Some(config);
        self
    }

    /// Quiescence deadline for [`Tracker::query`]/[`Tracker::answers`]
    /// (and [`Tracker::settle_deadline`]'s default): a stalled or dead
    /// site makes the wait return [`SimError::Timeout`] instead of
    /// parking unboundedly. Default: no deadline (unbounded waits, the
    /// historical behavior). Must be nonzero.
    pub fn settle_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Structured-event tracing configuration (default: off — one
    /// relaxed-load branch per would-be event, nothing recorded). Can
    /// also be toggled later via [`Tracker::set_trace`] or externally via
    /// the [`TRACE_ENV`] environment variable; an explicit call here
    /// overrides the environment.
    pub fn trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }
}

impl TrackerBuilder<()> {
    /// Select the protocol to track.
    pub fn protocol<P: Protocol>(self, protocol: P) -> TrackerBuilder<P> {
        TrackerBuilder {
            sites: self.sites,
            backend: self.backend,
            queue_cap: self.queue_cap,
            flow: self.flow,
            deadline: self.deadline,
            trace: self.trace,
            protocol,
        }
    }
}

impl<P: Protocol> TrackerBuilder<P> {
    /// Check every knob that would otherwise panic (or wedge) deep inside
    /// backend spawn, so misconfiguration surfaces as a typed error.
    fn validate(&self) -> Result<(), TrackerError> {
        if let BackendKind::Sharded { workers: Some(0) } = self.backend {
            return Err(TrackerError::InvalidConfig {
                knob: "backend",
                detail: "sharded pool needs at least 1 worker".to_owned(),
            });
        }
        if let BackendKind::Async {
            workers: Some(0), ..
        } = self.backend
        {
            return Err(TrackerError::InvalidConfig {
                knob: "backend",
                detail: "async executor needs at least 1 worker".to_owned(),
            });
        }
        if self.queue_cap == Some(0) {
            return Err(TrackerError::InvalidConfig {
                knob: "site_queue_cap",
                detail: "queue capacity must be >= 1".to_owned(),
            });
        }
        if self.deadline == Some(Duration::ZERO) {
            return Err(TrackerError::InvalidConfig {
                knob: "settle_deadline",
                detail: "deadline must be nonzero".to_owned(),
            });
        }
        if let Some(flow) = &self.flow {
            flow.validate()
                .map_err(|detail| TrackerError::InvalidConfig {
                    knob: "flow_control",
                    detail,
                })?;
        }
        Ok(())
    }

    /// Construct the protocol state and start the chosen backend.
    pub fn build(self) -> Result<Tracker, TrackerError> {
        self.validate()?;
        let k = match (self.sites, self.protocol.sites_hint()) {
            (Some(requested), Some(embedded)) if requested != embedded => {
                return Err(TrackerError::SiteCountMismatch {
                    requested,
                    embedded,
                })
            }
            (Some(k), _) | (None, Some(k)) => k,
            (None, None) => return Err(TrackerError::MissingSiteCount),
        };
        let (sites, coordinator) = self.protocol.build(k).map_err(TrackerError::Protocol)?;
        let queue_cap = self.queue_cap.unwrap_or(SITE_QUEUE_CAP);
        let deadline = self.deadline;
        let (env_trace, trace_export) = trace_from_env();
        let trace = self.trace.or(env_trace);
        let mut inner: Box<dyn ErasedProtocol> = match self.backend {
            BackendKind::Deterministic => Box::new(Bound {
                backend: DeterministicBackend::new(sites, coordinator)?,
                protocol: self.protocol,
                deadline,
            }),
            BackendKind::Threaded => {
                let mut backend = ThreadedBackend::spawn_with_cap(sites, coordinator, queue_cap)?;
                if let Some(flow) = self.flow {
                    backend.set_flow_control(flow);
                }
                Box::new(Bound {
                    backend,
                    protocol: self.protocol,
                    deadline,
                })
            }
            BackendKind::Sharded { workers } => {
                let mut backend = ShardedBackend::spawn_with(
                    sites,
                    coordinator,
                    ShardedConfig {
                        workers,
                        site_queue_cap: queue_cap,
                    },
                )?;
                if let Some(flow) = self.flow {
                    backend.set_flow_control(flow);
                }
                Box::new(Bound {
                    backend,
                    protocol: self.protocol,
                    deadline,
                })
            }
            BackendKind::Async { workers, wire } => {
                let mut backend = AsyncBackend::spawn_with(
                    sites,
                    coordinator,
                    AsyncConfig {
                        workers,
                        site_queue_cap: queue_cap,
                        wire,
                    },
                )?;
                if let Some(flow) = self.flow {
                    backend.set_flow_control(flow);
                }
                Box::new(Bound {
                    backend,
                    protocol: self.protocol,
                    deadline,
                })
            }
        };
        if let Some(config) = trace {
            inner.set_trace(config);
        }
        Ok(Tracker {
            inner,
            backend: self.backend,
            k,
            trace_export,
        })
    }
}

/// One continuously tracked function over a distributed stream: `k` sites
/// and a coordinator, on a chosen backend, answering typed queries at any
/// time — the paper's model as a single handle.
pub struct Tracker {
    inner: Box<dyn ErasedProtocol>,
    backend: BackendKind,
    k: u32,
    /// Chrome trace destination requested via [`TRACE_ENV`]; written
    /// best-effort at [`Tracker::finish`].
    trace_export: Option<PathBuf>,
}

impl fmt::Debug for Tracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracker")
            .field("protocol", &self.inner.label())
            .field("backend", &self.backend)
            .field("k", &self.k)
            .finish()
    }
}

impl Tracker {
    /// Start building a tracker.
    pub fn builder() -> TrackerBuilder {
        TrackerBuilder::default()
    }

    /// The protocol's label (e.g. `"hh-exact"`).
    pub fn protocol_label(&self) -> &'static str {
        self.inner.label()
    }

    /// Which backend this tracker runs on.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend
    }

    /// Number of sites k.
    pub fn num_sites(&self) -> u32 {
        self.k
    }

    /// Deliver one item to one site (see [`Backend::feed`]).
    pub fn feed(&mut self, site: SiteId, item: u64) -> Result<(), SimError> {
        self.inner.feed(site, item)
    }

    /// Deliver a pre-assigned batch on the transcript-identical
    /// site-at-a-time schedule (see [`Backend::feed_batch`]).
    pub fn feed_batch(&mut self, batch: &[(SiteId, u64)]) -> Result<(), SimError> {
        self.inner.feed_batch(batch)
    }

    /// Deliver a same-site run on the free-running throughput path (see
    /// [`Backend::ingest`]).
    pub fn ingest(&mut self, site: SiteId, items: Vec<u64>) -> Result<(), SimError> {
        self.inner.ingest(site, items)
    }

    /// Block until the system is quiescent (no-op on the deterministic
    /// backend).
    pub fn settle(&mut self) {
        self.inner.settle();
    }

    /// Deadline-aware [`Tracker::settle`]: wait at most `deadline` for
    /// quiescence, then degrade to [`SimError::Timeout`] — the
    /// graceful-degradation path when a site may be stalled or dead. The
    /// tracker stays usable after a timeout.
    pub fn settle_deadline(&mut self, deadline: Duration) -> Result<(), SimError> {
        self.inner.settle_deadline(deadline)
    }

    /// Install the flow controller's reference communication rate
    /// (expected metered words per fed item; see [`Backend::cost_hint`]).
    /// Free-running ingest compares observed words-per-item against this
    /// to detect budget drift. No-op on the deterministic backend.
    pub fn cost_hint(&mut self, words_per_item: f64) {
        self.inner.cost_hint(words_per_item);
    }

    /// Apply one fault (see [`FaultEvent`]). Inject at quiescent points —
    /// after [`Tracker::settle`] or between batches — so the fault's
    /// position in the transcript is deterministic across backends.
    pub fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), SimError> {
        self.inner.inject_fault(fault)
    }

    /// Answer a typed query against the quiescent coordinator state.
    /// Settles first, so a mid-stream query on the threaded backend
    /// observes a consistent snapshot; costs zero communication (queries
    /// read continuously maintained state).
    pub fn query(&mut self, query: Query) -> Result<Answer, QueryError> {
        self.inner.query(query)
    }

    /// The protocol's canonical final-answer set (settles first).
    /// `Display` of each element reproduces the legacy transcript
    /// strings.
    pub fn answers(&mut self) -> Result<Vec<Answer>, QueryError> {
        self.inner.answers()
    }

    /// Snapshot the communication meter (settle first — or use
    /// [`Tracker::query`]/[`Tracker::answers`], which settle for you —
    /// for a consistent mid-run picture).
    pub fn cost(&mut self) -> MessageMeter {
        self.inner.cost()
    }

    /// Switch structured-event tracing on or off at any point in the
    /// run. Events recorded before enablement are simply absent; the
    /// metered transcript and every answer are byte-identical either way.
    pub fn set_trace(&mut self, config: TraceConfig) {
        self.inner.set_trace(config);
    }

    /// Snapshot the merged, logical-clock-ordered trace event stream
    /// (settles first for a complete picture). Empty when tracing is off.
    pub fn trace_events(&mut self) -> Vec<TraceEvent> {
        self.inner.trace_events()
    }

    /// Total trace events lost to ring overflow (raise
    /// [`TraceConfig::with_ring_capacity`] if nonzero).
    pub fn trace_dropped(&mut self) -> u64 {
        self.inner.trace_dropped()
    }

    /// The per-kind/per-phase summary of the current trace stream — the
    /// same value [`Query::Trace`] answers with.
    pub fn trace_summary(&mut self) -> TraceSummary {
        let events = self.inner.trace_events();
        let dropped = self.inner.trace_dropped();
        TraceSummary::from_events(&events, dropped)
    }

    /// Export the current trace stream as a Chrome `trace_event` JSON
    /// file (open in `chrome://tracing` or Perfetto). Settles first.
    pub fn export_trace<P: AsRef<Path>>(&mut self, path: P) -> std::io::Result<()> {
        let events = self.inner.trace_events();
        write_chrome_file(&events, path)
    }

    /// Tear down the backend and return the final merged meter. Worker
    /// death on the threaded backend surfaces here. When [`TRACE_ENV`]
    /// requested a Chrome export, it is written (best-effort) first.
    pub fn finish(mut self) -> Result<MessageMeter, SimError> {
        if let Some(path) = self.trace_export.take() {
            let _ = self.export_trace(&path);
        }
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Outbox;

    /// Minimal test protocol: sites forward every item, the coordinator
    /// counts them; `Count` is the only supported query.
    #[derive(Debug, Clone)]
    struct CountProtocol;

    #[derive(Debug, Default)]
    struct FwdSite;
    #[derive(Debug)]
    struct UpMsg;
    #[derive(Debug)]
    struct NoDown;

    impl MessageSize for UpMsg {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "t/up"
        }
    }
    impl MessageSize for NoDown {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "t/down"
        }
    }

    impl dtrack_wire::WireMessage for UpMsg {
        fn wire_encode(&self, _out: &mut Vec<u8>) {}
        fn wire_decode(
            _r: &mut dtrack_wire::WireReader<'_>,
        ) -> Result<Self, dtrack_wire::DecodeError> {
            Ok(UpMsg)
        }
    }
    impl dtrack_wire::WireMessage for NoDown {
        fn wire_encode(&self, _out: &mut Vec<u8>) {}
        fn wire_decode(
            _r: &mut dtrack_wire::WireReader<'_>,
        ) -> Result<Self, dtrack_wire::DecodeError> {
            Ok(NoDown)
        }
    }

    impl Site for FwdSite {
        type Item = u64;
        type Up = UpMsg;
        type Down = NoDown;
        fn on_item(&mut self, _item: u64, out: &mut Vec<UpMsg>) {
            out.push(UpMsg);
        }
        fn on_message(&mut self, _msg: &NoDown, _out: &mut Vec<UpMsg>) {}
    }

    #[derive(Debug, Default)]
    struct CountCoord {
        seen: u64,
    }
    impl Coordinator for CountCoord {
        type Up = UpMsg;
        type Down = NoDown;
        fn on_message(&mut self, _from: SiteId, _msg: UpMsg, _out: &mut Outbox<NoDown>) {
            self.seen += 1;
        }
    }

    impl Protocol for CountProtocol {
        type Site = FwdSite;
        type Up = UpMsg;
        type Down = NoDown;
        type Coordinator = CountCoord;

        fn label(&self) -> &'static str {
            "test-count"
        }
        fn build(&self, k: u32) -> Result<(Vec<FwdSite>, CountCoord), String> {
            Ok(((0..k).map(|_| FwdSite).collect(), CountCoord::default()))
        }
        fn query(&self, c: &CountCoord, query: Query) -> Result<Answer, QueryError> {
            match query {
                Query::Count => Ok(Answer::Count(c.seen)),
                other => Err(self.unsupported(other)),
            }
        }
        fn answers(&self, c: &CountCoord) -> Result<Vec<Answer>, QueryError> {
            Ok(vec![Answer::Count(c.seen)])
        }
    }

    #[test]
    fn builder_requires_a_site_count() {
        let err = Tracker::builder()
            .protocol(CountProtocol)
            .build()
            .unwrap_err();
        assert_eq!(err, TrackerError::MissingSiteCount);
    }

    #[test]
    fn tracker_feeds_queries_and_finishes() {
        for backend in [
            BackendKind::Deterministic,
            BackendKind::Threaded,
            BackendKind::Sharded { workers: Some(2) },
            BackendKind::Async {
                workers: Some(2),
                wire: false,
            },
            BackendKind::Async {
                workers: Some(2),
                wire: true,
            },
        ] {
            let mut t = Tracker::builder()
                .sites(3)
                .backend(backend)
                .site_queue_cap(64)
                .protocol(CountProtocol)
                .build()
                .unwrap();
            assert_eq!(t.num_sites(), 3);
            assert_eq!(t.backend_kind(), backend);
            assert_eq!(t.protocol_label(), "test-count");
            t.feed(SiteId(0), 9).unwrap();
            t.feed_batch(&[(SiteId(1), 1), (SiteId(2), 2), (SiteId(2), 3)])
                .unwrap();
            t.ingest(SiteId(0), vec![7, 8]).unwrap();
            let answer = t.query(Query::Count).unwrap();
            assert_eq!(answer, Answer::Count(6));
            assert_eq!(answer.to_string(), "estimate=6");
            assert_eq!(t.answers().unwrap(), vec![Answer::Count(6)]);
            let err = t.query(Query::TrackedQuantile).unwrap_err();
            assert!(matches!(err, QueryError::Unsupported { .. }), "{err}");
            t.settle();
            assert_eq!(t.cost().kind("t/up").messages, 6);
            let meter = t.finish().unwrap();
            assert_eq!(meter.total_messages(), 6);
        }
    }

    #[test]
    fn tracker_routes_faults_to_every_backend() {
        for backend in [
            BackendKind::Deterministic,
            BackendKind::Threaded,
            BackendKind::Sharded { workers: Some(2) },
            BackendKind::Async {
                workers: Some(2),
                wire: true,
            },
        ] {
            let mut t = Tracker::builder()
                .sites(3)
                .backend(backend)
                .protocol(CountProtocol)
                .build()
                .unwrap();
            t.feed(SiteId(2), 1).unwrap();
            t.settle();
            t.inject_fault(FaultEvent::KillSite { site: SiteId(2) })
                .unwrap();
            assert_eq!(
                t.feed(SiteId(2), 2),
                Err(SimError::SiteDown { site: 2 }),
                "{backend}"
            );
            t.inject_fault(FaultEvent::StallSite {
                site: SiteId(0),
                micros: 200,
            })
            .unwrap();
            t.feed(SiteId(0), 3).unwrap();
            assert_eq!(t.query(Query::Count).unwrap(), Answer::Count(2));
            t.finish().unwrap();
        }
    }

    #[test]
    fn builder_rejects_invalid_configs_with_typed_errors() {
        let zero_workers = Tracker::builder()
            .sites(2)
            .backend(BackendKind::Sharded { workers: Some(0) })
            .protocol(CountProtocol)
            .build()
            .unwrap_err();
        assert!(
            matches!(
                zero_workers,
                TrackerError::InvalidConfig {
                    knob: "backend",
                    ..
                }
            ),
            "{zero_workers}"
        );
        let zero_async_workers = Tracker::builder()
            .sites(2)
            .backend(BackendKind::Async {
                workers: Some(0),
                wire: false,
            })
            .protocol(CountProtocol)
            .build()
            .unwrap_err();
        assert!(
            matches!(
                zero_async_workers,
                TrackerError::InvalidConfig {
                    knob: "backend",
                    ..
                }
            ),
            "{zero_async_workers}"
        );
        let zero_cap = Tracker::builder()
            .sites(2)
            .backend(BackendKind::Threaded)
            .site_queue_cap(0)
            .protocol(CountProtocol)
            .build()
            .unwrap_err();
        assert!(
            matches!(
                zero_cap,
                TrackerError::InvalidConfig {
                    knob: "site_queue_cap",
                    ..
                }
            ),
            "{zero_cap}"
        );
        let zero_deadline = Tracker::builder()
            .sites(2)
            .settle_deadline(Duration::ZERO)
            .protocol(CountProtocol)
            .build()
            .unwrap_err();
        assert!(
            matches!(
                zero_deadline,
                TrackerError::InvalidConfig {
                    knob: "settle_deadline",
                    ..
                }
            ),
            "{zero_deadline}"
        );
        let bad_flow = Tracker::builder()
            .sites(2)
            .backend(BackendKind::Threaded)
            .flow_control(crate::flow::FlowControlConfig {
                win_min: 64,
                win_max: 16,
                ..Default::default()
            })
            .protocol(CountProtocol)
            .build()
            .unwrap_err();
        assert!(
            matches!(
                bad_flow,
                TrackerError::InvalidConfig {
                    knob: "flow_control",
                    ..
                }
            ),
            "{bad_flow}"
        );
        let msg = bad_flow.to_string();
        assert!(msg.contains("flow_control"), "{msg}");
    }

    #[test]
    fn flow_control_query_reports_runtime_state_on_parallel_backends() {
        for backend in [
            BackendKind::Threaded,
            BackendKind::Sharded { workers: Some(2) },
            BackendKind::Async {
                workers: Some(2),
                wire: false,
            },
        ] {
            let mut t = Tracker::builder()
                .sites(3)
                .backend(backend)
                .flow_control(crate::flow::FlowControlConfig::fixed(32))
                .protocol(CountProtocol)
                .build()
                .unwrap();
            t.ingest(SiteId(0), vec![1, 2, 3]).unwrap();
            match t.query(Query::FlowControl).unwrap() {
                Answer::FlowControl(stats) => {
                    assert_eq!(stats.windows, vec![32, 32, 32], "{backend}");
                }
                other => panic!("expected flow-control stats, got {other}"),
            }
            t.finish().unwrap();
        }
        // The deterministic backend has no controller to observe.
        let mut t = Tracker::builder()
            .sites(3)
            .protocol(CountProtocol)
            .build()
            .unwrap();
        let err = t.query(Query::FlowControl).unwrap_err();
        assert!(matches!(err, QueryError::Unsupported { .. }), "{err}");
        t.finish().unwrap();
    }

    #[test]
    fn trace_query_and_export_work_on_every_backend() {
        for backend in [
            BackendKind::Deterministic,
            BackendKind::Threaded,
            BackendKind::Sharded { workers: Some(2) },
            BackendKind::Async {
                workers: Some(2),
                wire: true,
            },
        ] {
            let mut t = Tracker::builder()
                .sites(3)
                .backend(backend)
                .protocol(CountProtocol)
                .build()
                .unwrap();
            // Off by default: the query answers, with an empty summary.
            match t.query(Query::Trace).unwrap() {
                Answer::Trace(summary) => assert_eq!(summary.events, 0, "{backend}"),
                other => panic!("expected a trace summary, got {other}"),
            }
            t.set_trace(TraceConfig::on());
            t.feed(SiteId(0), 9).unwrap();
            t.feed_batch(&[(SiteId(1), 1), (SiteId(2), 2)]).unwrap();
            match t.query(Query::Trace).unwrap() {
                Answer::Trace(summary) => {
                    assert!(summary.count("up-hop") >= 3, "{backend}: {summary}");
                    assert_eq!(summary.dropped, 0, "{backend}");
                }
                other => panic!("expected a trace summary, got {other}"),
            }
            let events = t.trace_events();
            assert!(!events.is_empty(), "{backend}");
            let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../../target/tmp")
                .join(format!("tracker-trace-{backend}.json"));
            t.export_trace(&path).unwrap();
            let json = std::fs::read_to_string(&path).unwrap();
            assert!(json.contains("traceEvents"), "{backend}");
            assert!(json.contains("up-hop"), "{backend}");
            let _ = std::fs::remove_file(&path);
            t.finish().unwrap();
        }
    }

    #[test]
    fn settle_deadline_flows_through_the_facade() {
        for backend in [
            BackendKind::Deterministic,
            BackendKind::Threaded,
            BackendKind::Sharded { workers: Some(2) },
            BackendKind::Async {
                workers: Some(2),
                wire: true,
            },
        ] {
            let mut t = Tracker::builder()
                .sites(2)
                .backend(backend)
                .settle_deadline(Duration::from_secs(30))
                .protocol(CountProtocol)
                .build()
                .unwrap();
            t.feed(SiteId(0), 1).unwrap();
            t.cost_hint(1.0);
            t.settle_deadline(Duration::from_secs(30)).unwrap();
            assert_eq!(
                t.query(Query::Count).unwrap(),
                Answer::Count(1),
                "{backend}"
            );
            t.finish().unwrap();
        }
    }

    #[test]
    fn deadline_query_times_out_on_a_stalled_site() {
        let mut t = Tracker::builder()
            .sites(2)
            .backend(BackendKind::Threaded)
            .settle_deadline(Duration::from_millis(20))
            .protocol(CountProtocol)
            .build()
            .unwrap();
        t.inject_fault(FaultEvent::StallSite {
            site: SiteId(0),
            micros: 300_000,
        })
        .unwrap();
        t.feed(SiteId(0), 1).unwrap();
        let err = t.query(Query::Count).unwrap_err();
        assert!(
            matches!(err, QueryError::Runtime(SimError::Timeout { .. })),
            "{err}"
        );
        // Still usable once the stall drains.
        t.settle();
        assert_eq!(t.query(Query::Count).unwrap(), Answer::Count(1));
        t.finish().unwrap();
    }

    #[test]
    fn builder_cross_checks_embedded_site_counts() {
        #[derive(Debug, Clone)]
        struct Hinted;
        impl Protocol for Hinted {
            type Site = FwdSite;
            type Up = UpMsg;
            type Down = NoDown;
            type Coordinator = CountCoord;
            fn label(&self) -> &'static str {
                "hinted"
            }
            fn sites_hint(&self) -> Option<u32> {
                Some(4)
            }
            fn build(&self, k: u32) -> Result<(Vec<FwdSite>, CountCoord), String> {
                Ok(((0..k).map(|_| FwdSite).collect(), CountCoord::default()))
            }
            fn query(&self, _c: &CountCoord, query: Query) -> Result<Answer, QueryError> {
                Err(self.unsupported(query))
            }
            fn answers(&self, _c: &CountCoord) -> Result<Vec<Answer>, QueryError> {
                Ok(Vec::new())
            }
        }
        // Hint alone suffices.
        let t = Tracker::builder().protocol(Hinted).build().unwrap();
        assert_eq!(t.num_sites(), 4);
        // Agreement is fine.
        assert!(Tracker::builder().sites(4).protocol(Hinted).build().is_ok());
        // Disagreement is an error, not a silent pick.
        let err = Tracker::builder()
            .sites(8)
            .protocol(Hinted)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            TrackerError::SiteCountMismatch {
                requested: 8,
                embedded: 4,
            }
        );
    }
}
