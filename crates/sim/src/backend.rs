//! Runtime-agnostic driving surface: the [`Backend`] trait and its
//! implementations.
//!
//! A backend owns `k` [`Site`] state machines plus one [`Coordinator`]
//! and carries their messages. The [`Backend`] trait is the *only*
//! surface the [`crate::Tracker`] facade (and the testkit's generic
//! scenario drivers) need, so adding a runtime — the ROADMAP's async
//! executor, work-stealing shards, a sharded coordinator — means one new
//! impl here and zero changes anywhere above.
//!
//! Three implementations exist today:
//!
//! * [`DeterministicBackend`] wraps [`Cluster`]: single-threaded, every
//!   arrival drained to quiescence, the transcript the paper's theorems
//!   are metered against. `settle` is a no-op (the system is always
//!   quiescent between calls).
//! * [`ThreadedBackend`] wraps [`crate::threaded::ThreadedCluster`]: one
//!   OS thread per site plus a coordinator thread. `feed_batch` uses the
//!   transcript-identical site-at-a-time schedule; [`Backend::ingest`]
//!   uses free-running per-site runs paced by the shared [`AimdWindow`]
//!   (the adaptive flow-control discipline that keeps feedback-starved
//!   sites from over-communicating lives *here*, so every caller gets it
//!   for free — see [`crate::flow`]).
//! * [`ShardedBackend`] wraps [`crate::sharded::ShardedCluster`]: many
//!   logical sites multiplexed onto a fixed work-stealing worker pool, so
//!   the site count can scale far past the core count. Same batch
//!   schedule, same AIMD window for free-running ingest.
//! * [`AsyncBackend`] wraps [`crate::async_rt::AsyncCluster`]: sites as
//!   lightweight tasks on a `tokio`-style executor over a fixed worker
//!   pool, with an optional length-prefixed wire codec on every hop.
//!   Same batch schedule, same AIMD window.

#![deny(missing_docs)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::RecvTimeoutError;
use dtrack_trace::{
    merge_snapshots, SiteTracer, TraceConfig, TraceEvent, TraceEventKind, TraceLane,
};
use dtrack_wire::WireMessage;

use crate::async_rt::{AsyncCluster, AsyncConfig};
use crate::cluster::Cluster;
use crate::error::SimError;
use crate::flow::{AimdController, FlowControlConfig, FlowControlStats};
use crate::meter::MessageMeter;
use crate::proto::{Coordinator, Site, SiteId};
use crate::sharded::{ShardedCluster, ShardedConfig};
use crate::threaded::{RunTicket, ThreadedCluster, SITE_QUEUE_CAP};

/// One injectable fault, applied through [`Backend::inject_fault`] so
/// every runtime honors the same hostile-scenario vocabulary.
///
/// The semantics are deliberately *administrative* — faults perturb the
/// environment (membership, timing), never the protocol state machines —
/// so a fault schedule is replayable and its effect on the metered
/// transcript is well-defined on every backend:
///
/// * [`FaultEvent::KillSite`] partitions one site away for good: feeds to
///   it return [`SimError::SiteDown`], coordinator downs addressed to it
///   are dropped *unmetered* (downs are metered at the receiving side,
///   and nothing is received), and its state is frozen. The runtime stays
///   healthy and teardown is clean.
/// * [`FaultEvent::StallSite`] holds the site (its thread, or the pool
///   worker serving it) for a duration: a pure timing fault. On the
///   deterministic backend — which has no timing — it is a no-op; on the
///   parallel backends it keeps the system non-quiescent for the
///   duration, so `settle()` provably terminates under slow consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Administratively kill a site (permanent partition).
    KillSite {
        /// The site to kill.
        site: SiteId,
    },
    /// Hold a site's execution for `micros` microseconds (slow consumer).
    StallSite {
        /// The site to stall.
        site: SiteId,
        /// Stall duration in microseconds.
        micros: u64,
    },
}

/// A runtime that can drive one protocol instance: deliver items, reach
/// quiescence, answer coordinator queries, meter communication, and tear
/// down.
///
/// All methods take `&mut self` even where an implementation could accept
/// `&self` (the threaded cluster's channels are `Sync`): the facade
/// serializes callers anyway, and `&mut` keeps the deterministic and
/// threaded signatures identical.
pub trait Backend<S, C>: Sized
where
    S: Site,
    S::Item: Clone,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    /// Deliver one item to one site.
    ///
    /// Deterministic: runs all triggered communication to quiescence
    /// before returning. Threaded: enqueues and returns (backpressure
    /// blocks only when the site's queue is full).
    fn feed(&mut self, site: SiteId, item: S::Item) -> Result<(), SimError>;

    /// Deliver a pre-assigned batch on a site-at-a-time schedule whose
    /// transcript (answers *and* metered words) is bit-identical to
    /// calling [`Backend::feed`] once per pair on the deterministic
    /// backend.
    fn feed_batch(&mut self, batch: &[(SiteId, S::Item)]) -> Result<(), SimError>;

    /// Deliver a whole same-site run for free-running consumption — the
    /// maximum-throughput path. Arrivals may interleave with in-flight
    /// communication, so the transcript is *not* pinned; the ε-guarantee
    /// still holds at quiescence. Implementations bound how far a site
    /// may run ahead of coordinator feedback (the parallel backends keep
    /// an adaptive AIMD run-length window per site; items may be buffered
    /// until the next `ingest`, `settle`, or `finish`).
    fn ingest(&mut self, site: SiteId, items: Vec<S::Item>) -> Result<(), SimError>;

    /// Block until no message is queued or in flight anywhere. Queries
    /// are meaningful (and meters consistent) only at quiescence.
    fn settle(&mut self);

    /// Deadline-aware [`Backend::settle`]: wait for quiescence at most
    /// `deadline`, then degrade to [`SimError::Timeout`] instead of an
    /// unbounded park — the graceful-degradation path for stalled or
    /// wedged sites. The runtime stays usable after a timeout. The
    /// deterministic backend is always quiescent, so the default simply
    /// settles and succeeds.
    fn settle_deadline(&mut self, _deadline: Duration) -> Result<(), SimError> {
        self.settle();
        Ok(())
    }

    /// Install the flow controller's reference communication rate
    /// (expected metered words per fed item, e.g. the protocol's word
    /// budget divided by the stream length). Free-running ingest compares
    /// observed words-per-item against this rate to detect drift; without
    /// a hint, only the backpressure signal adapts windows. No-op on
    /// backends without a flow controller.
    fn cost_hint(&mut self, _words_per_item: f64) {}

    /// Snapshot the free-running flow controller's observable state, or
    /// `None` on backends without one (the deterministic backend needs no
    /// flow control — it is always quiescent).
    fn flow_control(&self) -> Option<FlowControlStats> {
        None
    }

    /// Run a closure against the coordinator state and return its result.
    /// Call [`Backend::settle`] first if the query must observe a
    /// quiescent state.
    fn with_coordinator<R, F>(&mut self, f: F) -> Result<R, SimError>
    where
        R: Send + 'static,
        F: FnOnce(&mut C) -> R + Send + 'static;

    /// Apply one fault (see [`FaultEvent`] for the cross-backend
    /// semantics). Inject at quiescent points — after [`Backend::settle`]
    /// or between `feed_batch` chunks — so the fault's position in the
    /// transcript is deterministic.
    fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), SimError>;

    /// Apply a trace configuration (see [`TraceConfig`]). Takes effect
    /// for events recorded after the call; enabling before the first
    /// feed yields a complete stream (the configuration store
    /// happens-before the workers' next command receive). The default is
    /// a no-op for backends without tracing.
    fn set_trace(&mut self, _config: TraceConfig) {}

    /// Merged, clock-ordered snapshot of every recorded trace event.
    /// Non-destructive; call after [`Backend::settle`] for a consistent
    /// stream. Empty when tracing was never enabled.
    fn trace_events(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Trace events lost to ring-buffer overwrite so far (the rings keep
    /// the newest events; see `dtrack-trace`'s overflow policy).
    fn trace_dropped(&mut self) -> u64 {
        0
    }

    /// Snapshot the communication meter (merged across threads where
    /// applicable). Call after [`Backend::settle`] for a consistent
    /// picture.
    fn cost(&mut self) -> MessageMeter;

    /// Tear down, returning the final coordinator, sites, and meter.
    fn finish(self) -> Result<(C, Vec<S>, MessageMeter), SimError>;
}

/// The single-threaded, transcript-pinned backend (wraps [`Cluster`]).
pub struct DeterministicBackend<S, C>
where
    S: Site,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    cluster: Cluster<S, C>,
    /// Scratch for [`Backend::ingest`]'s (site, item) pairing.
    run_buf: Vec<(SiteId, S::Item)>,
    /// Driver-lane tracer: settle boundaries and fault events.
    tracer: SiteTracer,
}

impl<S, C> DeterministicBackend<S, C>
where
    S: Site,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    /// Build the backend from pre-constructed protocol state.
    pub fn new(sites: Vec<S>, coordinator: C) -> Result<Self, SimError> {
        let cluster = Cluster::new(sites, coordinator)?;
        let tracer = SiteTracer::new(Arc::clone(cluster.trace_shared()), TraceLane::Driver);
        Ok(DeterministicBackend {
            cluster,
            run_buf: Vec::new(),
            tracer,
        })
    }

    /// The wrapped cluster (typed access for tests and adversaries).
    pub fn cluster(&self) -> &Cluster<S, C> {
        &self.cluster
    }
}

impl<S, C> Backend<S, C> for DeterministicBackend<S, C>
where
    S: Site,
    S::Item: Clone,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    fn feed(&mut self, site: SiteId, item: S::Item) -> Result<(), SimError> {
        self.cluster.feed(site, item)
    }

    fn feed_batch(&mut self, batch: &[(SiteId, S::Item)]) -> Result<(), SimError> {
        self.cluster.feed_batch(batch)
    }

    fn ingest(&mut self, site: SiteId, items: Vec<S::Item>) -> Result<(), SimError> {
        // Free-running and quiescent delivery coincide on a single
        // thread; reuse the batched same-site run path.
        self.run_buf.clear();
        self.run_buf.extend(items.into_iter().map(|it| (site, it)));
        self.cluster.feed_batch(&self.run_buf)
    }

    fn settle(&mut self) {
        // Always quiescent between calls. The settle markers keep the
        // driver-lane vocabulary uniform across backends, with logical
        // (zero) durations so the stream stays bit-identical per seed.
        self.tracer.record(TraceEventKind::SettleBegin);
        self.tracer.record(TraceEventKind::SettleEnd { micros: 0 });
    }

    fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), SimError> {
        match fault {
            FaultEvent::KillSite { site } => {
                self.cluster.kill_site(site)?;
                self.tracer
                    .record(TraceEventKind::SiteKilled { site: site.0 });
                Ok(())
            }
            // No clocks on the deterministic backend: a stall is a pure
            // timing fault and timing does not exist here. Still traced —
            // the fault schedule's position in the stream is part of the
            // transcript.
            FaultEvent::StallSite { site, micros } => {
                self.tracer.record(TraceEventKind::SiteStalled {
                    site: site.0,
                    micros,
                });
                Ok(())
            }
        }
    }

    fn with_coordinator<R, F>(&mut self, f: F) -> Result<R, SimError>
    where
        R: Send + 'static,
        F: FnOnce(&mut C) -> R + Send + 'static,
    {
        Ok(f(self.cluster.coordinator_mut()))
    }

    fn set_trace(&mut self, config: TraceConfig) {
        self.cluster.set_trace(config);
    }

    fn trace_events(&mut self) -> Vec<TraceEvent> {
        merge_snapshots(vec![self.cluster.trace_events(), self.tracer.snapshot()])
    }

    fn trace_dropped(&mut self) -> u64 {
        self.cluster.trace_dropped() + self.tracer.dropped()
    }

    fn cost(&mut self) -> MessageMeter {
        self.cluster.meter().clone()
    }

    fn finish(self) -> Result<(C, Vec<S>, MessageMeter), SimError> {
        Ok(self.cluster.into_parts())
    }
}

/// The shared per-site AIMD flow-control window behind
/// [`Backend::ingest`] on both parallel backends (the successor of the
/// fixed one-run-per-site ticket window).
///
/// Each site keeps at most one outstanding run plus a small buffer of
/// not-yet-enqueued items. Run length follows the site's
/// [`AimdController`] window: completed runs grow it additively, the
/// drift signal halves it. Unbounded run queueing would let sites race
/// ahead of coordinator feedback and flood stale-threshold deltas (see
/// [`ThreadedCluster::ingest_run`]); sharing the controller here keeps a
/// future fix from silently missing one backend.
///
/// Buffered items become visible at the next flush point — any further
/// `ingest` for the site, or `settle`/`finish`/`inject_fault`, all of
/// which flush. The settled `feed_batch` path never touches this type,
/// so golden transcripts are unaffected.
struct AimdWindow<I> {
    controller: AimdController,
    tickets: Vec<Option<RunTicket>>,
    buffers: Vec<Vec<I>>,
    /// Driver-lane tracer for window changes and backpressure waits
    /// (`None` until the owning backend wires its cluster's trace hub).
    tracer: Option<SiteTracer>,
    /// Reference words-per-item installed via [`Backend::cost_hint`];
    /// `None` disables the rate-drift signal.
    ref_rate: Option<f64>,
    /// Items handed to the cluster so far (probe pacing).
    flushed_items: u64,
    last_probe_items: u64,
    last_probe_words: u64,
}

impl<I> AimdWindow<I> {
    fn new(k: usize, config: FlowControlConfig) -> Self {
        AimdWindow {
            controller: AimdController::new(k, config),
            tickets: (0..k).map(|_| None).collect(),
            buffers: (0..k).map(|_| Vec::new()).collect(),
            tracer: None,
            ref_rate: None,
            flushed_items: 0,
            last_probe_items: 0,
            last_probe_words: 0,
        }
    }

    /// Wire the cluster's trace hub (driver lane) so window adjustments
    /// and backpressure waits appear in the event stream.
    fn set_tracer(&mut self, tracer: SiteTracer) {
        self.tracer = Some(tracer);
    }

    fn trace(&mut self, kind: TraceEventKind) {
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.record(kind);
        }
    }

    /// Record a [`TraceEventKind::WindowChange`] if `idx`'s window moved
    /// across an adjustment (captured as the before-value by the caller).
    fn trace_window_change(&mut self, idx: usize, before: u32) {
        let after = self.controller.window(idx);
        if after != before {
            self.trace(TraceEventKind::WindowChange {
                site: idx as u32,
                window: after,
            });
        }
    }

    fn tracer_snapshot(&self) -> Vec<TraceEvent> {
        self.tracer
            .as_ref()
            .map_or_else(Vec::new, SiteTracer::snapshot)
    }

    fn tracer_dropped(&self) -> u64 {
        self.tracer.as_ref().map_or(0, SiteTracer::dropped)
    }

    /// Swap in a new configuration (resets windows to the new initial;
    /// call before ingesting).
    fn set_config(&mut self, config: FlowControlConfig) {
        self.controller = AimdController::new(self.buffers.len(), config);
    }

    fn set_ref_rate(&mut self, words_per_item: f64) {
        self.ref_rate = Some(words_per_item);
    }

    fn stats(&self) -> FlowControlStats {
        self.controller.stats()
    }

    /// Buffer `items` for `site` and pump the window: enqueue
    /// window-sized runs whenever the site's previous run has resolved,
    /// blocking (with the backpressure drift signal) only when the buffer
    /// has a full window waiting.
    fn ingest(
        &mut self,
        site: SiteId,
        mut items: Vec<I>,
        mut enqueue: impl FnMut(Vec<I>) -> Result<RunTicket, SimError>,
        mut probe_words: impl FnMut() -> u64,
        mut probe_backlog: impl FnMut() -> u64,
    ) -> Result<(), SimError> {
        let idx = site.index();
        if idx >= self.buffers.len() {
            // Out of range: let the cluster produce its canonical error.
            return enqueue(items).map(|_| ());
        }
        if self.buffers[idx].is_empty() {
            self.buffers[idx] = items;
        } else {
            self.buffers[idx].append(&mut items);
        }
        self.stall_for_backlog(idx, &mut probe_backlog);
        self.pump(idx, &mut enqueue)?;
        self.maybe_probe(&mut probe_words);
        Ok(())
    }

    /// Source-side congestion stall: while the cluster-wide backlog
    /// (in-flight commands plus undelivered protocol messages) exceeds
    /// the configured in-flight budget, hold off enqueuing more work so
    /// coordinator feedback can drain. Per-site windows bound one site's
    /// lead; this bounds the *sum* — the quantity that actually backs up
    /// the shared coordinator when sites outnumber cores. A sustained
    /// stall fires the per-site drift signal once, and the wait is
    /// bounded (50 × `backpressure_wait`) so a wedged cluster degrades
    /// into the queues' own backpressure instead of hanging here.
    fn stall_for_backlog(&mut self, idx: usize, probe_backlog: &mut impl FnMut() -> u64) {
        let config = *self.controller.config();
        if config.inflight_cap == 0 || probe_backlog() <= u64::from(config.inflight_cap) {
            return;
        }
        let started = Instant::now();
        let mut drifted = false;
        loop {
            std::thread::yield_now();
            if probe_backlog() <= u64::from(config.inflight_cap) {
                return;
            }
            let waited = started.elapsed();
            if !drifted && waited >= config.backpressure_wait {
                let before = self.controller.window(idx);
                self.controller.drift_site(idx);
                self.trace(TraceEventKind::BackpressureWait { site: idx as u32 });
                self.trace_window_change(idx, before);
                drifted = true;
            }
            if waited >= config.backpressure_wait * 50 {
                return;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    /// Drain `site`'s buffer into window-sized runs while the one-run
    /// window allows. Exits with less than one window buffered (or an
    /// empty buffer), so per-site in-flight items stay within ~2 windows.
    fn pump(
        &mut self,
        idx: usize,
        enqueue: &mut impl FnMut(Vec<I>) -> Result<RunTicket, SimError>,
    ) -> Result<(), SimError> {
        loop {
            let win = self.controller.window(idx) as usize;
            if let Some(ticket) = self.tickets[idx].take() {
                if ticket.0.try_recv().is_some() {
                    let before = self.controller.window(idx);
                    self.controller.clean_run(idx);
                    self.trace_window_change(idx, before);
                } else if self.buffers[idx].len() < win {
                    // Pipelined: run in flight, buffer not yet full —
                    // come back on the next ingest or flush.
                    self.tickets[idx] = Some(ticket);
                    break;
                } else {
                    // A full window is waiting on a slow consumer. Wait
                    // out the run, treating a long wait as backpressure
                    // (the per-site drift signal).
                    let wait = self.controller.config().backpressure_wait;
                    match ticket.0.recv_timeout(wait) {
                        Ok(()) => {
                            let before = self.controller.window(idx);
                            self.controller.clean_run(idx);
                            self.trace_window_change(idx, before);
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            let before = self.controller.window(idx);
                            self.controller.drift_site(idx);
                            self.trace(TraceEventKind::BackpressureWait { site: idx as u32 });
                            self.trace_window_change(idx, before);
                            ticket
                                .0
                                .recv()
                                .map_err(|_| SimError::WorkerGone { who: "site" })?;
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            return Err(SimError::WorkerGone { who: "site" });
                        }
                    }
                }
            }
            if self.buffers[idx].is_empty() {
                break;
            }
            let win = self.controller.window(idx) as usize;
            let buf = &mut self.buffers[idx];
            let run: Vec<I> = if buf.len() <= win {
                std::mem::take(buf)
            } else {
                buf.drain(..win).collect()
            };
            self.flushed_items += run.len() as u64;
            self.tickets[idx] = Some(enqueue(run)?);
        }
        Ok(())
    }

    /// Every `sample_items` flushed items, compare the observed metered
    /// words-per-item against the reference rate; sustained excess fires
    /// the global drift signal (the meter is cluster-wide, so every
    /// window halves).
    fn maybe_probe(&mut self, probe_words: &mut impl FnMut() -> u64) {
        let Some(ref_rate) = self.ref_rate else {
            return;
        };
        let config = *self.controller.config();
        if config.increase == 0 && config.win_min == config.win_max {
            return; // fixed window: nothing to adapt, skip the probe cost
        }
        let delta_items = self.flushed_items - self.last_probe_items;
        if delta_items < config.sample_items {
            return;
        }
        let words = probe_words();
        let delta_words = words.saturating_sub(self.last_probe_words);
        self.last_probe_items = self.flushed_items;
        self.last_probe_words = words;
        let observed = delta_words as f64 / delta_items as f64;
        if observed > ref_rate * config.drift_factor {
            self.controller.drift_all();
            // One event stands in for the cluster-wide halving; site
            // `u32::MAX` is the documented "all sites" sentinel and the
            // window value is the post-halving minimum across sites.
            let window = (0..self.buffers.len())
                .map(|i| self.controller.window(i))
                .min()
                .unwrap_or(0);
            self.trace(TraceEventKind::WindowChange {
                site: u32::MAX,
                window,
            });
        }
    }

    /// Enqueue every buffered run (tail flush before a quiescence wait,
    /// fault injection, or teardown). Does not wait for tickets — the
    /// caller is about to wait for quiescence, which covers queued runs.
    /// A site that rejects its run (killed, or its worker died) drops the
    /// buffered items with the error, exactly as a failed `feed` would.
    fn flush(&mut self, mut enqueue: impl FnMut(SiteId, Vec<I>) -> Result<RunTicket, SimError>) {
        for idx in 0..self.buffers.len() {
            if self.buffers[idx].is_empty() {
                continue;
            }
            let items = std::mem::take(&mut self.buffers[idx]);
            self.flushed_items += items.len() as u64;
            if let Ok(ticket) = enqueue(SiteId(idx as u32), items) {
                self.tickets[idx] = Some(ticket);
            }
        }
    }

    fn clear(&mut self) {
        self.tickets.clear();
    }
}

/// Driver-side settle instrumentation for the timed backends: record the
/// backlog high-water mark plus [`TraceEventKind::SettleBegin`] and
/// return the wall timer the matching [`settle_end`] consumes. `None`
/// (and no events) when tracing is off, so the untraced settle path
/// never reads a clock.
fn settle_begin(tracer: &mut SiteTracer, backlog: u64) -> Option<Instant> {
    if !tracer.is_on() {
        return None;
    }
    if backlog > 0 {
        tracer.record(TraceEventKind::QueueDepth { depth: backlog });
    }
    tracer.record(TraceEventKind::SettleBegin);
    Some(Instant::now())
}

/// Close the settle phase opened by [`settle_begin`] with its wall-clock
/// duration (the timed backends' per-phase histogram input).
fn settle_end(tracer: &mut SiteTracer, started: Option<Instant>) {
    if let Some(t0) = started {
        tracer.record(TraceEventKind::SettleEnd {
            micros: t0.elapsed().as_micros() as u64,
        });
    }
}

/// The OS-thread backend (wraps [`ThreadedCluster`]).
pub struct ThreadedBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    cluster: ThreadedCluster<S, C>,
    window: AimdWindow<S::Item>,
    /// Driver-lane tracer: settle phases and fault events.
    tracer: SiteTracer,
}

impl<S, C> ThreadedBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    /// Spawn the worker threads from pre-constructed protocol state,
    /// with the default site-queue capacity.
    pub fn spawn(sites: Vec<S>, coordinator: C) -> Result<Self, SimError> {
        Self::spawn_with_cap(sites, coordinator, SITE_QUEUE_CAP)
    }

    /// [`ThreadedBackend::spawn`] with an explicit per-site queue
    /// capacity (see [`ThreadedCluster::spawn_with_cap`]).
    pub fn spawn_with_cap(
        sites: Vec<S>,
        coordinator: C,
        queue_cap: usize,
    ) -> Result<Self, SimError> {
        let k = sites.len();
        let cluster = ThreadedCluster::spawn_with_cap(sites, coordinator, queue_cap)?;
        let mut window = AimdWindow::new(k, FlowControlConfig::default());
        window.set_tracer(SiteTracer::new(
            Arc::clone(cluster.trace_shared()),
            TraceLane::Driver,
        ));
        let tracer = SiteTracer::new(Arc::clone(cluster.trace_shared()), TraceLane::Driver);
        Ok(ThreadedBackend {
            cluster,
            window,
            tracer,
        })
    }

    /// Replace the free-running flow-control configuration (resets every
    /// window to the configuration's initial value; call before
    /// ingesting).
    pub fn set_flow_control(&mut self, config: FlowControlConfig) {
        self.window.set_config(config);
    }
}

impl<S, C> Backend<S, C> for ThreadedBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    fn feed(&mut self, site: SiteId, item: S::Item) -> Result<(), SimError> {
        // Flush buffered free-running runs first so items stay ordered
        // per site even when callers mix ingest and feed.
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        self.cluster.feed(site, item)
    }

    fn feed_batch(&mut self, batch: &[(SiteId, S::Item)]) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        self.cluster.feed_batch(batch)
    }

    fn ingest(&mut self, site: SiteId, items: Vec<S::Item>) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window.ingest(
            site,
            items,
            |run| cluster.ingest_run(site, run),
            || cluster.words_hint(),
            || cluster.backlog_hint(),
        )
    }

    fn settle(&mut self) {
        // Tail-flush buffered runs, then wait: the pending counter covers
        // queued runs (each `Run` command holds a token until fully
        // consumed), so waiting for quiescence also waits out every
        // outstanding ticket.
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        let started = settle_begin(&mut self.tracer, self.cluster.backlog_hint());
        self.cluster.settle();
        settle_end(&mut self.tracer, started);
    }

    fn settle_deadline(&mut self, deadline: Duration) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        let started = settle_begin(&mut self.tracer, self.cluster.backlog_hint());
        let result = self.cluster.settle_deadline(deadline);
        settle_end(&mut self.tracer, started);
        result
    }

    fn cost_hint(&mut self, words_per_item: f64) {
        self.window.set_ref_rate(words_per_item);
    }

    fn flow_control(&self) -> Option<FlowControlStats> {
        Some(self.window.stats())
    }

    fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), SimError> {
        // Flush so the fault's position relative to already-ingested
        // items is deterministic.
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        match fault {
            FaultEvent::KillSite { site } => {
                self.cluster.kill_site(site)?;
                self.tracer
                    .record(TraceEventKind::SiteKilled { site: site.0 });
                Ok(())
            }
            FaultEvent::StallSite { site, micros } => {
                self.cluster.stall_site(site, micros)?;
                self.tracer.record(TraceEventKind::SiteStalled {
                    site: site.0,
                    micros,
                });
                Ok(())
            }
        }
    }

    fn with_coordinator<R, F>(&mut self, f: F) -> Result<R, SimError>
    where
        R: Send + 'static,
        F: FnOnce(&mut C) -> R + Send + 'static,
    {
        self.cluster.with_coordinator(f)
    }

    fn set_trace(&mut self, config: TraceConfig) {
        self.cluster.set_trace(config);
    }

    fn trace_events(&mut self) -> Vec<TraceEvent> {
        merge_snapshots(vec![
            self.cluster.trace_events(),
            self.tracer.snapshot(),
            self.window.tracer_snapshot(),
        ])
    }

    fn trace_dropped(&mut self) -> u64 {
        self.cluster.trace_dropped() + self.tracer.dropped() + self.window.tracer_dropped()
    }

    fn cost(&mut self) -> MessageMeter {
        self.cluster.cost()
    }

    fn finish(mut self) -> Result<(C, Vec<S>, MessageMeter), SimError> {
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        self.window.clear();
        self.cluster.shutdown()
    }
}

/// The work-stealing pool backend (wraps [`ShardedCluster`]): a fixed
/// worker count serving any number of logical sites.
pub struct ShardedBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    cluster: ShardedCluster<S, C>,
    window: AimdWindow<S::Item>,
    /// Driver-lane tracer: settle phases and fault events.
    tracer: SiteTracer,
}

impl<S, C> ShardedBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    /// Spawn the default pool (one worker per core) from pre-constructed
    /// protocol state.
    pub fn spawn(sites: Vec<S>, coordinator: C) -> Result<Self, SimError> {
        Self::spawn_with(sites, coordinator, ShardedConfig::default())
    }

    /// Spawn with an explicit worker count and queue capacity.
    pub fn spawn_with(
        sites: Vec<S>,
        coordinator: C,
        config: ShardedConfig,
    ) -> Result<Self, SimError> {
        let k = sites.len();
        let cluster = ShardedCluster::spawn_with(sites, coordinator, config)?;
        let mut window = AimdWindow::new(k, FlowControlConfig::default());
        window.set_tracer(SiteTracer::new(
            Arc::clone(cluster.trace_shared()),
            TraceLane::Driver,
        ));
        let tracer = SiteTracer::new(Arc::clone(cluster.trace_shared()), TraceLane::Driver);
        Ok(ShardedBackend {
            cluster,
            window,
            tracer,
        })
    }

    /// Replace the free-running flow-control configuration (resets every
    /// window to the configuration's initial value; call before
    /// ingesting).
    pub fn set_flow_control(&mut self, config: FlowControlConfig) {
        self.window.set_config(config);
    }
}

impl<S, C> Backend<S, C> for ShardedBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    fn feed(&mut self, site: SiteId, item: S::Item) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        self.cluster.feed(site, item)
    }

    fn feed_batch(&mut self, batch: &[(SiteId, S::Item)]) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        self.cluster.feed_batch(batch)
    }

    fn ingest(&mut self, site: SiteId, items: Vec<S::Item>) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window.ingest(
            site,
            items,
            |run| cluster.ingest_run(site, run),
            || cluster.words_hint(),
            || cluster.backlog_hint(),
        )
    }

    fn settle(&mut self) {
        // As on the threaded backend, the pending counter covers queued
        // runs, so settling also waits out every outstanding ticket.
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        let started = settle_begin(&mut self.tracer, self.cluster.backlog_hint());
        self.cluster.settle();
        settle_end(&mut self.tracer, started);
    }

    fn settle_deadline(&mut self, deadline: Duration) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        let started = settle_begin(&mut self.tracer, self.cluster.backlog_hint());
        let result = self.cluster.settle_deadline(deadline);
        settle_end(&mut self.tracer, started);
        result
    }

    fn cost_hint(&mut self, words_per_item: f64) {
        self.window.set_ref_rate(words_per_item);
    }

    fn flow_control(&self) -> Option<FlowControlStats> {
        Some(self.window.stats())
    }

    fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        match fault {
            FaultEvent::KillSite { site } => {
                self.cluster.kill_site(site)?;
                self.tracer
                    .record(TraceEventKind::SiteKilled { site: site.0 });
                Ok(())
            }
            FaultEvent::StallSite { site, micros } => {
                self.cluster.stall_site(site, micros)?;
                self.tracer.record(TraceEventKind::SiteStalled {
                    site: site.0,
                    micros,
                });
                Ok(())
            }
        }
    }

    fn with_coordinator<R, F>(&mut self, f: F) -> Result<R, SimError>
    where
        R: Send + 'static,
        F: FnOnce(&mut C) -> R + Send + 'static,
    {
        self.cluster.with_coordinator(f)
    }

    fn set_trace(&mut self, config: TraceConfig) {
        self.cluster.set_trace(config);
    }

    fn trace_events(&mut self) -> Vec<TraceEvent> {
        merge_snapshots(vec![
            self.cluster.trace_events(),
            self.tracer.snapshot(),
            self.window.tracer_snapshot(),
        ])
    }

    fn trace_dropped(&mut self) -> u64 {
        self.cluster.trace_dropped() + self.tracer.dropped() + self.window.tracer_dropped()
    }

    fn cost(&mut self) -> MessageMeter {
        self.cluster.cost()
    }

    fn finish(mut self) -> Result<(C, Vec<S>, MessageMeter), SimError> {
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        self.window.clear();
        self.cluster.shutdown()
    }
}

/// The async-task backend (wraps [`AsyncCluster`]): any number of sites
/// as tasks on a fixed worker pool, with an optional wire codec on every
/// hop ([`AsyncConfig::wire`]).
pub struct AsyncBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send + WireMessage,
    S::Down: Send + Sync + WireMessage,
{
    cluster: AsyncCluster<S, C>,
    window: AimdWindow<S::Item>,
    /// Driver-lane tracer: settle phases and fault events.
    tracer: SiteTracer,
}

impl<S, C> AsyncBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send + WireMessage,
    S::Down: Send + Sync + WireMessage,
{
    /// Spawn the default pool (one worker per core, wire codec off) from
    /// pre-constructed protocol state.
    pub fn spawn(sites: Vec<S>, coordinator: C) -> Result<Self, SimError> {
        Self::spawn_with(sites, coordinator, AsyncConfig::default())
    }

    /// Spawn with an explicit worker count, queue capacity, and wire
    /// setting.
    pub fn spawn_with(
        sites: Vec<S>,
        coordinator: C,
        config: AsyncConfig,
    ) -> Result<Self, SimError> {
        let k = sites.len();
        let cluster = AsyncCluster::spawn_with(sites, coordinator, config)?;
        let mut window = AimdWindow::new(k, FlowControlConfig::default());
        window.set_tracer(SiteTracer::new(
            Arc::clone(cluster.trace_shared()),
            TraceLane::Driver,
        ));
        let tracer = SiteTracer::new(Arc::clone(cluster.trace_shared()), TraceLane::Driver);
        Ok(AsyncBackend {
            cluster,
            window,
            tracer,
        })
    }

    /// Replace the free-running flow-control configuration (resets every
    /// window to the configuration's initial value; call before
    /// ingesting).
    pub fn set_flow_control(&mut self, config: FlowControlConfig) {
        self.window.set_config(config);
    }
}

impl<S, C> Backend<S, C> for AsyncBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send + WireMessage,
    S::Down: Send + Sync + WireMessage,
{
    fn feed(&mut self, site: SiteId, item: S::Item) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        self.cluster.feed(site, item)
    }

    fn feed_batch(&mut self, batch: &[(SiteId, S::Item)]) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        self.cluster.feed_batch(batch)
    }

    fn ingest(&mut self, site: SiteId, items: Vec<S::Item>) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window.ingest(
            site,
            items,
            |run| cluster.ingest_run(site, run),
            || cluster.words_hint(),
            || cluster.backlog_hint(),
        )
    }

    fn settle(&mut self) {
        // As on the other parallel backends, the pending counter covers
        // queued runs, so settling also waits out every outstanding
        // ticket.
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        let started = settle_begin(&mut self.tracer, self.cluster.backlog_hint());
        self.cluster.settle();
        settle_end(&mut self.tracer, started);
    }

    fn settle_deadline(&mut self, deadline: Duration) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        let started = settle_begin(&mut self.tracer, self.cluster.backlog_hint());
        let result = self.cluster.settle_deadline(deadline);
        settle_end(&mut self.tracer, started);
        result
    }

    fn cost_hint(&mut self, words_per_item: f64) {
        self.window.set_ref_rate(words_per_item);
    }

    fn flow_control(&self) -> Option<FlowControlStats> {
        Some(self.window.stats())
    }

    fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        match fault {
            FaultEvent::KillSite { site } => {
                self.cluster.kill_site(site)?;
                self.tracer
                    .record(TraceEventKind::SiteKilled { site: site.0 });
                Ok(())
            }
            FaultEvent::StallSite { site, micros } => {
                self.cluster.stall_site(site, micros)?;
                self.tracer.record(TraceEventKind::SiteStalled {
                    site: site.0,
                    micros,
                });
                Ok(())
            }
        }
    }

    fn with_coordinator<R, F>(&mut self, f: F) -> Result<R, SimError>
    where
        R: Send + 'static,
        F: FnOnce(&mut C) -> R + Send + 'static,
    {
        self.cluster.with_coordinator(f)
    }

    fn set_trace(&mut self, config: TraceConfig) {
        self.cluster.set_trace(config);
    }

    fn trace_events(&mut self) -> Vec<TraceEvent> {
        merge_snapshots(vec![
            self.cluster.trace_events(),
            self.tracer.snapshot(),
            self.window.tracer_snapshot(),
        ])
    }

    fn trace_dropped(&mut self) -> u64 {
        self.cluster.trace_dropped() + self.tracer.dropped() + self.window.tracer_dropped()
    }

    fn cost(&mut self) -> MessageMeter {
        self.cluster.cost()
    }

    fn finish(mut self) -> Result<(C, Vec<S>, MessageMeter), SimError> {
        let cluster = &self.cluster;
        self.window.flush(|s, run| cluster.ingest_run(s, run));
        self.window.clear();
        self.cluster.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{MessageSize, Outbox};
    use dtrack_wire::{put_u64, DecodeError, WireReader};

    #[derive(Debug, Default)]
    struct EchoSite;
    #[derive(Debug)]
    struct Up(u64);
    #[derive(Debug)]
    struct NoDown;

    impl MessageSize for Up {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "b/up"
        }
    }
    impl MessageSize for NoDown {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "b/down"
        }
    }

    impl WireMessage for Up {
        fn wire_encode(&self, out: &mut Vec<u8>) {
            put_u64(out, self.0);
        }
        fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
            Ok(Up(r.u64()?))
        }
    }
    impl WireMessage for NoDown {
        fn wire_encode(&self, _out: &mut Vec<u8>) {}
        fn wire_decode(_r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
            Ok(NoDown)
        }
    }

    impl Site for EchoSite {
        type Item = u64;
        type Up = Up;
        type Down = NoDown;
        fn on_item(&mut self, item: u64, out: &mut Vec<Up>) {
            out.push(Up(item));
        }
        fn on_message(&mut self, _msg: &NoDown, _out: &mut Vec<Up>) {}
    }

    #[derive(Debug, Default)]
    struct SumCoord {
        sum: u64,
    }
    impl Coordinator for SumCoord {
        type Up = Up;
        type Down = NoDown;
        fn on_message(&mut self, _from: SiteId, msg: Up, _out: &mut Outbox<NoDown>) {
            self.sum += msg.0;
        }
    }

    fn run_backend<B: Backend<EchoSite, SumCoord>>(mut b: B) {
        b.feed(SiteId(0), 1).unwrap();
        b.feed_batch(&[(SiteId(1), 2), (SiteId(1), 3)]).unwrap();
        b.ingest(SiteId(0), vec![4, 5]).unwrap();
        b.ingest(SiteId(0), vec![6]).unwrap();
        b.settle();
        let sum = b.with_coordinator(|c| c.sum).unwrap();
        assert_eq!(sum, 21);
        let meter = b.cost();
        assert_eq!(meter.kind("b/up").messages, 6);
        let (coord, sites, meter) = b.finish().unwrap();
        assert_eq!(coord.sum, 21);
        assert_eq!(sites.len(), 2);
        assert_eq!(meter.total_messages(), 6);
    }

    #[test]
    fn deterministic_backend_drives_the_protocol() {
        let sites = (0..2).map(|_| EchoSite).collect();
        run_backend(DeterministicBackend::new(sites, SumCoord::default()).unwrap());
    }

    #[test]
    fn threaded_backend_drives_the_protocol() {
        let sites = (0..2).map(|_| EchoSite).collect();
        run_backend(ThreadedBackend::spawn(sites, SumCoord::default()).unwrap());
    }

    #[test]
    fn sharded_backend_drives_the_protocol() {
        // Fewer workers than sites and more workers than sites both
        // satisfy the backend contract.
        for workers in [1usize, 4] {
            let sites = (0..2).map(|_| EchoSite).collect();
            let config = ShardedConfig {
                workers: Some(workers),
                ..ShardedConfig::default()
            };
            run_backend(ShardedBackend::spawn_with(sites, SumCoord::default(), config).unwrap());
        }
    }

    #[test]
    fn async_backend_drives_the_protocol() {
        // Wire codec off and on must satisfy the same contract with the
        // same metered totals.
        for wire in [false, true] {
            let sites = (0..2).map(|_| EchoSite).collect();
            let config = AsyncConfig {
                workers: Some(2),
                ..AsyncConfig::default()
            }
            .with_wire(wire);
            run_backend(AsyncBackend::spawn_with(sites, SumCoord::default(), config).unwrap());
        }
    }

    /// Identical trace semantics on every backend: untraced runs record
    /// nothing, traced runs carry the hop vocabulary with nondecreasing
    /// merged clocks, and tracing never perturbs the protocol outcome.
    fn run_traced_backend<B: Backend<EchoSite, SumCoord>>(mut b: B) {
        assert!(
            b.trace_events().is_empty(),
            "untraced backends record nothing"
        );
        b.set_trace(TraceConfig::on());
        b.feed(SiteId(0), 1).unwrap();
        b.feed_batch(&[(SiteId(1), 2), (SiteId(1), 3)]).unwrap();
        b.ingest(SiteId(0), vec![4, 5, 6]).unwrap();
        b.settle();
        assert_eq!(b.with_coordinator(|c| c.sum).unwrap(), 21);
        let events = b.trace_events();
        let count = |label: &str| events.iter().filter(|e| e.kind.label() == label).count();
        assert_eq!(count("up-hop"), 6, "one up per item: {events:#?}");
        assert!(count("item-run") >= 3, "feed + batch + ingest all traced");
        assert!(count("settle-begin") >= 1);
        assert_eq!(count("settle-begin"), count("settle-end"));
        assert_eq!(b.trace_dropped(), 0);
        assert!(
            events.windows(2).all(|w| w[0].clock <= w[1].clock),
            "merged stream is clock-ordered"
        );
        b.finish().unwrap();
    }

    #[test]
    fn deterministic_backend_traces_the_hop_vocabulary() {
        let sites = (0..2).map(|_| EchoSite).collect();
        run_traced_backend(DeterministicBackend::new(sites, SumCoord::default()).unwrap());
    }

    #[test]
    fn threaded_backend_traces_the_hop_vocabulary() {
        let sites = (0..2).map(|_| EchoSite).collect();
        run_traced_backend(ThreadedBackend::spawn(sites, SumCoord::default()).unwrap());
    }

    #[test]
    fn sharded_backend_traces_the_hop_vocabulary() {
        let sites = (0..2).map(|_| EchoSite).collect();
        let config = ShardedConfig {
            workers: Some(2),
            ..ShardedConfig::default()
        };
        run_traced_backend(ShardedBackend::spawn_with(sites, SumCoord::default(), config).unwrap());
    }

    #[test]
    fn async_backend_traces_the_hop_vocabulary() {
        for wire in [false, true] {
            let sites = (0..2).map(|_| EchoSite).collect();
            let config = AsyncConfig {
                workers: Some(2),
                ..AsyncConfig::default()
            }
            .with_wire(wire);
            run_traced_backend(
                AsyncBackend::spawn_with(sites, SumCoord::default(), config).unwrap(),
            );
        }
    }

    /// Identical fault semantics on every backend: a killed site rejects
    /// feeds with `SiteDown`, the rest of the cluster keeps working, a
    /// stall never wedges `settle`, and teardown stays clean.
    fn run_faulted_backend<B: Backend<EchoSite, SumCoord>>(mut b: B) {
        b.feed(SiteId(0), 1).unwrap();
        b.feed(SiteId(1), 2).unwrap();
        b.inject_fault(FaultEvent::KillSite { site: SiteId(1) })
            .unwrap();
        assert_eq!(b.feed(SiteId(1), 99), Err(SimError::SiteDown { site: 1 }));
        assert_eq!(
            b.feed_batch(&[(SiteId(1), 98), (SiteId(0), 97)]),
            Err(SimError::SiteDown { site: 1 })
        );
        b.inject_fault(FaultEvent::StallSite {
            site: SiteId(0),
            micros: 500,
        })
        .unwrap();
        b.feed(SiteId(0), 3).unwrap();
        b.settle();
        let sum = b.with_coordinator(|c| c.sum).unwrap();
        assert_eq!(sum, 6);
        assert_eq!(
            b.inject_fault(FaultEvent::KillSite { site: SiteId(9) }),
            Err(SimError::NoSuchSite { site: 9, sites: 2 })
        );
        let (coord, _, _) = b.finish().unwrap();
        assert_eq!(coord.sum, 6);
    }

    #[test]
    fn deterministic_backend_honors_fault_injection() {
        let sites = (0..2).map(|_| EchoSite).collect();
        run_faulted_backend(DeterministicBackend::new(sites, SumCoord::default()).unwrap());
    }

    #[test]
    fn threaded_backend_honors_fault_injection() {
        let sites = (0..2).map(|_| EchoSite).collect();
        run_faulted_backend(ThreadedBackend::spawn(sites, SumCoord::default()).unwrap());
    }

    #[test]
    fn sharded_backend_honors_fault_injection() {
        let sites = (0..2).map(|_| EchoSite).collect();
        let config = ShardedConfig {
            workers: Some(2),
            ..ShardedConfig::default()
        };
        run_faulted_backend(
            ShardedBackend::spawn_with(sites, SumCoord::default(), config).unwrap(),
        );
    }

    #[test]
    fn async_backend_honors_fault_injection() {
        let sites = (0..2).map(|_| EchoSite).collect();
        let config = AsyncConfig {
            workers: Some(2),
            ..AsyncConfig::default()
        };
        run_faulted_backend(AsyncBackend::spawn_with(sites, SumCoord::default(), config).unwrap());
    }

    #[test]
    fn backends_reject_small_clusters() {
        assert!(DeterministicBackend::new(vec![EchoSite], SumCoord::default()).is_err());
        assert!(ThreadedBackend::spawn(vec![EchoSite], SumCoord::default()).is_err());
        assert!(ShardedBackend::spawn(vec![EchoSite], SumCoord::default()).is_err());
        assert!(AsyncBackend::spawn(vec![EchoSite], SumCoord::default()).is_err());
    }

    /// A stalled site must degrade `settle_deadline` to `Timeout` instead
    /// of parking unboundedly, and the runtime must stay usable after.
    fn run_stalled_deadline<B: Backend<EchoSite, SumCoord>>(mut b: B) {
        b.inject_fault(FaultEvent::StallSite {
            site: SiteId(0),
            micros: 300_000,
        })
        .unwrap();
        b.feed(SiteId(0), 1).unwrap();
        let err = b.settle_deadline(Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, SimError::Timeout { waited_ms: 20 }));
        // Usable after the timeout: a full settle waits out the stall.
        b.settle();
        assert_eq!(b.with_coordinator(|c| c.sum).unwrap(), 1);
        b.finish().unwrap();
    }

    #[test]
    fn threaded_settle_deadline_times_out_under_stall() {
        let sites = (0..2).map(|_| EchoSite).collect();
        run_stalled_deadline(ThreadedBackend::spawn(sites, SumCoord::default()).unwrap());
    }

    #[test]
    fn sharded_settle_deadline_times_out_under_stall() {
        let sites = (0..2).map(|_| EchoSite).collect();
        let config = ShardedConfig {
            workers: Some(2),
            ..ShardedConfig::default()
        };
        run_stalled_deadline(
            ShardedBackend::spawn_with(sites, SumCoord::default(), config).unwrap(),
        );
    }

    #[test]
    fn deterministic_settle_deadline_always_succeeds() {
        let sites = (0..2).map(|_| EchoSite).collect();
        let mut b = DeterministicBackend::new(sites, SumCoord::default()).unwrap();
        b.feed(SiteId(0), 1).unwrap();
        assert_eq!(b.settle_deadline(Duration::from_millis(1)), Ok(()));
        assert!(b.flow_control().is_none(), "no controller to observe");
    }

    #[test]
    fn clean_runs_grow_the_window_between_settles() {
        let sites = (0..2).map(|_| EchoSite).collect();
        let mut b = ThreadedBackend::spawn(sites, SumCoord::default()).unwrap();
        b.set_flow_control(FlowControlConfig {
            win_min: 1,
            win_max: 64,
            initial: 1,
            increase: 1,
            ..FlowControlConfig::default()
        });
        for round in 0..4u64 {
            b.ingest(SiteId(0), vec![round]).unwrap();
            // Settling consumes the run, so the next pump observes a
            // clean completion and grows the window deterministically.
            b.settle();
        }
        let stats = b.flow_control().expect("parallel backends expose stats");
        assert!(
            stats.windows[0] > 1,
            "window should have grown past the initial, got {}",
            stats.windows[0]
        );
        assert_eq!(stats.windows[1], 1, "idle site's window untouched");
        b.finish().unwrap();
    }

    #[test]
    fn backpressure_on_a_stalled_site_halves_its_window() {
        let sites = (0..2).map(|_| EchoSite).collect();
        let mut b = ThreadedBackend::spawn(sites, SumCoord::default()).unwrap();
        b.set_flow_control(FlowControlConfig {
            win_min: 1,
            win_max: 64,
            initial: 4,
            increase: 1,
            backpressure_wait: Duration::from_millis(1),
            ..FlowControlConfig::default()
        });
        b.inject_fault(FaultEvent::StallSite {
            site: SiteId(0),
            micros: 50_000,
        })
        .unwrap();
        // First run queues behind the stall; the second finds a full
        // window buffered behind an unconsumed ticket -> drift signal.
        b.ingest(SiteId(0), vec![1, 2, 3, 4]).unwrap();
        b.ingest(SiteId(0), vec![5, 6, 7, 8]).unwrap();
        let stats = b.flow_control().unwrap();
        assert!(
            stats.drift_events >= 1,
            "backpressure should fire the drift signal, got {stats}"
        );
        b.settle();
        assert_eq!(b.with_coordinator(|c| c.sum).unwrap(), 36);
        b.finish().unwrap();
    }
}
