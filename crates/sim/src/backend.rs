//! Runtime-agnostic driving surface: the [`Backend`] trait and its
//! implementations.
//!
//! A backend owns `k` [`Site`] state machines plus one [`Coordinator`]
//! and carries their messages. The [`Backend`] trait is the *only*
//! surface the [`crate::Tracker`] facade (and the testkit's generic
//! scenario drivers) need, so adding a runtime — the ROADMAP's async
//! executor, work-stealing shards, a sharded coordinator — means one new
//! impl here and zero changes anywhere above.
//!
//! Three implementations exist today:
//!
//! * [`DeterministicBackend`] wraps [`Cluster`]: single-threaded, every
//!   arrival drained to quiescence, the transcript the paper's theorems
//!   are metered against. `settle` is a no-op (the system is always
//!   quiescent between calls).
//! * [`ThreadedBackend`] wraps [`crate::threaded::ThreadedCluster`]: one
//!   OS thread per site plus a coordinator thread. `feed_batch` uses the
//!   transcript-identical site-at-a-time schedule; [`Backend::ingest`]
//!   uses free-running per-site runs with a one-run completion window per
//!   site (the ticket discipline that keeps feedback-starved sites from
//!   over-communicating lives *here*, so every caller gets it for free).
//! * [`ShardedBackend`] wraps [`crate::sharded::ShardedCluster`]: many
//!   logical sites multiplexed onto a fixed work-stealing worker pool, so
//!   the site count can scale far past the core count. Same batch
//!   schedule, same ticket window for free-running ingest.

#![deny(missing_docs)]

use crate::cluster::Cluster;
use crate::error::SimError;
use crate::meter::MessageMeter;
use crate::proto::{Coordinator, Site, SiteId};
use crate::sharded::{ShardedCluster, ShardedConfig};
use crate::threaded::{RunTicket, ThreadedCluster, SITE_QUEUE_CAP};

/// One injectable fault, applied through [`Backend::inject_fault`] so
/// every runtime honors the same hostile-scenario vocabulary.
///
/// The semantics are deliberately *administrative* — faults perturb the
/// environment (membership, timing), never the protocol state machines —
/// so a fault schedule is replayable and its effect on the metered
/// transcript is well-defined on every backend:
///
/// * [`FaultEvent::KillSite`] partitions one site away for good: feeds to
///   it return [`SimError::SiteDown`], coordinator downs addressed to it
///   are dropped *unmetered* (downs are metered at the receiving side,
///   and nothing is received), and its state is frozen. The runtime stays
///   healthy and teardown is clean.
/// * [`FaultEvent::StallSite`] holds the site (its thread, or the pool
///   worker serving it) for a duration: a pure timing fault. On the
///   deterministic backend — which has no timing — it is a no-op; on the
///   parallel backends it keeps the system non-quiescent for the
///   duration, so `settle()` provably terminates under slow consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Administratively kill a site (permanent partition).
    KillSite {
        /// The site to kill.
        site: SiteId,
    },
    /// Hold a site's execution for `micros` microseconds (slow consumer).
    StallSite {
        /// The site to stall.
        site: SiteId,
        /// Stall duration in microseconds.
        micros: u64,
    },
}

/// A runtime that can drive one protocol instance: deliver items, reach
/// quiescence, answer coordinator queries, meter communication, and tear
/// down.
///
/// All methods take `&mut self` even where an implementation could accept
/// `&self` (the threaded cluster's channels are `Sync`): the facade
/// serializes callers anyway, and `&mut` keeps the deterministic and
/// threaded signatures identical.
pub trait Backend<S, C>: Sized
where
    S: Site,
    S::Item: Clone,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    /// Deliver one item to one site.
    ///
    /// Deterministic: runs all triggered communication to quiescence
    /// before returning. Threaded: enqueues and returns (backpressure
    /// blocks only when the site's queue is full).
    fn feed(&mut self, site: SiteId, item: S::Item) -> Result<(), SimError>;

    /// Deliver a pre-assigned batch on a site-at-a-time schedule whose
    /// transcript (answers *and* metered words) is bit-identical to
    /// calling [`Backend::feed`] once per pair on the deterministic
    /// backend.
    fn feed_batch(&mut self, batch: &[(SiteId, S::Item)]) -> Result<(), SimError>;

    /// Deliver a whole same-site run for free-running consumption — the
    /// maximum-throughput path. Arrivals may interleave with in-flight
    /// communication, so the transcript is *not* pinned; the ε-guarantee
    /// still holds at quiescence. Implementations bound how far a site
    /// may run ahead of coordinator feedback (the threaded backend keeps
    /// a one-run window per site).
    fn ingest(&mut self, site: SiteId, items: Vec<S::Item>) -> Result<(), SimError>;

    /// Block until no message is queued or in flight anywhere. Queries
    /// are meaningful (and meters consistent) only at quiescence.
    fn settle(&mut self);

    /// Run a closure against the coordinator state and return its result.
    /// Call [`Backend::settle`] first if the query must observe a
    /// quiescent state.
    fn with_coordinator<R, F>(&mut self, f: F) -> Result<R, SimError>
    where
        R: Send + 'static,
        F: FnOnce(&mut C) -> R + Send + 'static;

    /// Apply one fault (see [`FaultEvent`] for the cross-backend
    /// semantics). Inject at quiescent points — after [`Backend::settle`]
    /// or between `feed_batch` chunks — so the fault's position in the
    /// transcript is deterministic.
    fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), SimError>;

    /// Snapshot the communication meter (merged across threads where
    /// applicable). Call after [`Backend::settle`] for a consistent
    /// picture.
    fn cost(&mut self) -> MessageMeter;

    /// Tear down, returning the final coordinator, sites, and meter.
    fn finish(self) -> Result<(C, Vec<S>, MessageMeter), SimError>;
}

/// The single-threaded, transcript-pinned backend (wraps [`Cluster`]).
pub struct DeterministicBackend<S, C>
where
    S: Site,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    cluster: Cluster<S, C>,
    /// Scratch for [`Backend::ingest`]'s (site, item) pairing.
    run_buf: Vec<(SiteId, S::Item)>,
}

impl<S, C> DeterministicBackend<S, C>
where
    S: Site,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    /// Build the backend from pre-constructed protocol state.
    pub fn new(sites: Vec<S>, coordinator: C) -> Result<Self, SimError> {
        Ok(DeterministicBackend {
            cluster: Cluster::new(sites, coordinator)?,
            run_buf: Vec::new(),
        })
    }

    /// The wrapped cluster (typed access for tests and adversaries).
    pub fn cluster(&self) -> &Cluster<S, C> {
        &self.cluster
    }
}

impl<S, C> Backend<S, C> for DeterministicBackend<S, C>
where
    S: Site,
    S::Item: Clone,
    C: Coordinator<Up = S::Up, Down = S::Down>,
{
    fn feed(&mut self, site: SiteId, item: S::Item) -> Result<(), SimError> {
        self.cluster.feed(site, item)
    }

    fn feed_batch(&mut self, batch: &[(SiteId, S::Item)]) -> Result<(), SimError> {
        self.cluster.feed_batch(batch)
    }

    fn ingest(&mut self, site: SiteId, items: Vec<S::Item>) -> Result<(), SimError> {
        // Free-running and quiescent delivery coincide on a single
        // thread; reuse the batched same-site run path.
        self.run_buf.clear();
        self.run_buf.extend(items.into_iter().map(|it| (site, it)));
        self.cluster.feed_batch(&self.run_buf)
    }

    fn settle(&mut self) {
        // Always quiescent between calls.
    }

    fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), SimError> {
        match fault {
            FaultEvent::KillSite { site } => self.cluster.kill_site(site),
            // No clocks on the deterministic backend: a stall is a pure
            // timing fault and timing does not exist here.
            FaultEvent::StallSite { .. } => Ok(()),
        }
    }

    fn with_coordinator<R, F>(&mut self, f: F) -> Result<R, SimError>
    where
        R: Send + 'static,
        F: FnOnce(&mut C) -> R + Send + 'static,
    {
        Ok(f(self.cluster.coordinator_mut()))
    }

    fn cost(&mut self) -> MessageMeter {
        self.cluster.meter().clone()
    }

    fn finish(self) -> Result<(C, Vec<S>, MessageMeter), SimError> {
        Ok(self.cluster.into_parts())
    }
}

/// One outstanding free-run ticket per site: before a site's next run is
/// enqueued, its previous run must have been consumed. Both parallel
/// backends enforce this window on [`Backend::ingest`] — unbounded run
/// queueing lets sites race ahead of coordinator feedback and flood
/// stale-threshold deltas (see
/// [`ThreadedCluster::ingest_run`]) — and sharing the logic here keeps a
/// future fix from silently missing one of them.
struct TicketWindow {
    tickets: Vec<Option<RunTicket>>,
}

impl TicketWindow {
    fn new(k: usize) -> Self {
        TicketWindow {
            tickets: (0..k).map(|_| None).collect(),
        }
    }

    /// Wait out the site's previous run, then enqueue the next one via
    /// `enqueue` and hold its ticket.
    fn ingest(
        &mut self,
        site: SiteId,
        enqueue: impl FnOnce() -> Result<RunTicket, SimError>,
    ) -> Result<(), SimError> {
        if let Some(slot) = self.tickets.get_mut(site.index()) {
            if let Some(ticket) = slot.take() {
                ticket.wait()?;
            }
        }
        let ticket = enqueue()?;
        if let Some(slot) = self.tickets.get_mut(site.index()) {
            *slot = Some(ticket);
        }
        Ok(())
    }

    fn clear(&mut self) {
        self.tickets.clear();
    }
}

/// The OS-thread backend (wraps [`ThreadedCluster`]).
pub struct ThreadedBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    cluster: ThreadedCluster<S, C>,
    window: TicketWindow,
}

impl<S, C> ThreadedBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    /// Spawn the worker threads from pre-constructed protocol state,
    /// with the default site-queue capacity.
    pub fn spawn(sites: Vec<S>, coordinator: C) -> Result<Self, SimError> {
        Self::spawn_with_cap(sites, coordinator, SITE_QUEUE_CAP)
    }

    /// [`ThreadedBackend::spawn`] with an explicit per-site queue
    /// capacity (see [`ThreadedCluster::spawn_with_cap`]).
    pub fn spawn_with_cap(
        sites: Vec<S>,
        coordinator: C,
        queue_cap: usize,
    ) -> Result<Self, SimError> {
        let k = sites.len();
        Ok(ThreadedBackend {
            cluster: ThreadedCluster::spawn_with_cap(sites, coordinator, queue_cap)?,
            window: TicketWindow::new(k),
        })
    }
}

impl<S, C> Backend<S, C> for ThreadedBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    fn feed(&mut self, site: SiteId, item: S::Item) -> Result<(), SimError> {
        self.cluster.feed(site, item)
    }

    fn feed_batch(&mut self, batch: &[(SiteId, S::Item)]) -> Result<(), SimError> {
        self.cluster.feed_batch(batch)
    }

    fn ingest(&mut self, site: SiteId, items: Vec<S::Item>) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window
            .ingest(site, move || cluster.ingest_run(site, items))
    }

    fn settle(&mut self) {
        // The pending counter covers queued runs (each `Run` command
        // holds a token until fully consumed), so waiting for quiescence
        // also waits out every outstanding ticket.
        self.cluster.settle();
    }

    fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), SimError> {
        match fault {
            FaultEvent::KillSite { site } => self.cluster.kill_site(site),
            FaultEvent::StallSite { site, micros } => self.cluster.stall_site(site, micros),
        }
    }

    fn with_coordinator<R, F>(&mut self, f: F) -> Result<R, SimError>
    where
        R: Send + 'static,
        F: FnOnce(&mut C) -> R + Send + 'static,
    {
        self.cluster.with_coordinator(f)
    }

    fn cost(&mut self) -> MessageMeter {
        self.cluster.cost()
    }

    fn finish(mut self) -> Result<(C, Vec<S>, MessageMeter), SimError> {
        self.window.clear();
        self.cluster.shutdown()
    }
}

/// The work-stealing pool backend (wraps [`ShardedCluster`]): a fixed
/// worker count serving any number of logical sites.
pub struct ShardedBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    cluster: ShardedCluster<S, C>,
    window: TicketWindow,
}

impl<S, C> ShardedBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    /// Spawn the default pool (one worker per core) from pre-constructed
    /// protocol state.
    pub fn spawn(sites: Vec<S>, coordinator: C) -> Result<Self, SimError> {
        Self::spawn_with(sites, coordinator, ShardedConfig::default())
    }

    /// Spawn with an explicit worker count and queue capacity.
    pub fn spawn_with(
        sites: Vec<S>,
        coordinator: C,
        config: ShardedConfig,
    ) -> Result<Self, SimError> {
        let k = sites.len();
        Ok(ShardedBackend {
            cluster: ShardedCluster::spawn_with(sites, coordinator, config)?,
            window: TicketWindow::new(k),
        })
    }
}

impl<S, C> Backend<S, C> for ShardedBackend<S, C>
where
    S: Site + Send + 'static,
    C: Coordinator<Up = S::Up, Down = S::Down> + Send + 'static,
    S::Item: Send + Clone,
    S::Up: Send,
    S::Down: Send + Sync,
{
    fn feed(&mut self, site: SiteId, item: S::Item) -> Result<(), SimError> {
        self.cluster.feed(site, item)
    }

    fn feed_batch(&mut self, batch: &[(SiteId, S::Item)]) -> Result<(), SimError> {
        self.cluster.feed_batch(batch)
    }

    fn ingest(&mut self, site: SiteId, items: Vec<S::Item>) -> Result<(), SimError> {
        let cluster = &self.cluster;
        self.window
            .ingest(site, move || cluster.ingest_run(site, items))
    }

    fn settle(&mut self) {
        // As on the threaded backend, the pending counter covers queued
        // runs, so settling also waits out every outstanding ticket.
        self.cluster.settle();
    }

    fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), SimError> {
        match fault {
            FaultEvent::KillSite { site } => self.cluster.kill_site(site),
            FaultEvent::StallSite { site, micros } => self.cluster.stall_site(site, micros),
        }
    }

    fn with_coordinator<R, F>(&mut self, f: F) -> Result<R, SimError>
    where
        R: Send + 'static,
        F: FnOnce(&mut C) -> R + Send + 'static,
    {
        self.cluster.with_coordinator(f)
    }

    fn cost(&mut self) -> MessageMeter {
        self.cluster.cost()
    }

    fn finish(mut self) -> Result<(C, Vec<S>, MessageMeter), SimError> {
        self.window.clear();
        self.cluster.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{MessageSize, Outbox};

    #[derive(Debug, Default)]
    struct EchoSite;
    #[derive(Debug)]
    struct Up(u64);
    #[derive(Debug)]
    struct NoDown;

    impl MessageSize for Up {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "b/up"
        }
    }
    impl MessageSize for NoDown {
        fn size_words(&self) -> u64 {
            1
        }
        fn kind(&self) -> &'static str {
            "b/down"
        }
    }

    impl Site for EchoSite {
        type Item = u64;
        type Up = Up;
        type Down = NoDown;
        fn on_item(&mut self, item: u64, out: &mut Vec<Up>) {
            out.push(Up(item));
        }
        fn on_message(&mut self, _msg: &NoDown, _out: &mut Vec<Up>) {}
    }

    #[derive(Debug, Default)]
    struct SumCoord {
        sum: u64,
    }
    impl Coordinator for SumCoord {
        type Up = Up;
        type Down = NoDown;
        fn on_message(&mut self, _from: SiteId, msg: Up, _out: &mut Outbox<NoDown>) {
            self.sum += msg.0;
        }
    }

    fn run_backend<B: Backend<EchoSite, SumCoord>>(mut b: B) {
        b.feed(SiteId(0), 1).unwrap();
        b.feed_batch(&[(SiteId(1), 2), (SiteId(1), 3)]).unwrap();
        b.ingest(SiteId(0), vec![4, 5]).unwrap();
        b.ingest(SiteId(0), vec![6]).unwrap();
        b.settle();
        let sum = b.with_coordinator(|c| c.sum).unwrap();
        assert_eq!(sum, 21);
        let meter = b.cost();
        assert_eq!(meter.kind("b/up").messages, 6);
        let (coord, sites, meter) = b.finish().unwrap();
        assert_eq!(coord.sum, 21);
        assert_eq!(sites.len(), 2);
        assert_eq!(meter.total_messages(), 6);
    }

    #[test]
    fn deterministic_backend_drives_the_protocol() {
        let sites = (0..2).map(|_| EchoSite).collect();
        run_backend(DeterministicBackend::new(sites, SumCoord::default()).unwrap());
    }

    #[test]
    fn threaded_backend_drives_the_protocol() {
        let sites = (0..2).map(|_| EchoSite).collect();
        run_backend(ThreadedBackend::spawn(sites, SumCoord::default()).unwrap());
    }

    #[test]
    fn sharded_backend_drives_the_protocol() {
        // Fewer workers than sites and more workers than sites both
        // satisfy the backend contract.
        for workers in [1usize, 4] {
            let sites = (0..2).map(|_| EchoSite).collect();
            let config = ShardedConfig {
                workers: Some(workers),
                ..ShardedConfig::default()
            };
            run_backend(ShardedBackend::spawn_with(sites, SumCoord::default(), config).unwrap());
        }
    }

    /// Identical fault semantics on every backend: a killed site rejects
    /// feeds with `SiteDown`, the rest of the cluster keeps working, a
    /// stall never wedges `settle`, and teardown stays clean.
    fn run_faulted_backend<B: Backend<EchoSite, SumCoord>>(mut b: B) {
        b.feed(SiteId(0), 1).unwrap();
        b.feed(SiteId(1), 2).unwrap();
        b.inject_fault(FaultEvent::KillSite { site: SiteId(1) })
            .unwrap();
        assert_eq!(b.feed(SiteId(1), 99), Err(SimError::SiteDown { site: 1 }));
        assert_eq!(
            b.feed_batch(&[(SiteId(1), 98), (SiteId(0), 97)]),
            Err(SimError::SiteDown { site: 1 })
        );
        b.inject_fault(FaultEvent::StallSite {
            site: SiteId(0),
            micros: 500,
        })
        .unwrap();
        b.feed(SiteId(0), 3).unwrap();
        b.settle();
        let sum = b.with_coordinator(|c| c.sum).unwrap();
        assert_eq!(sum, 6);
        assert_eq!(
            b.inject_fault(FaultEvent::KillSite { site: SiteId(9) }),
            Err(SimError::NoSuchSite { site: 9, sites: 2 })
        );
        let (coord, _, _) = b.finish().unwrap();
        assert_eq!(coord.sum, 6);
    }

    #[test]
    fn deterministic_backend_honors_fault_injection() {
        let sites = (0..2).map(|_| EchoSite).collect();
        run_faulted_backend(DeterministicBackend::new(sites, SumCoord::default()).unwrap());
    }

    #[test]
    fn threaded_backend_honors_fault_injection() {
        let sites = (0..2).map(|_| EchoSite).collect();
        run_faulted_backend(ThreadedBackend::spawn(sites, SumCoord::default()).unwrap());
    }

    #[test]
    fn sharded_backend_honors_fault_injection() {
        let sites = (0..2).map(|_| EchoSite).collect();
        let config = ShardedConfig {
            workers: Some(2),
            ..ShardedConfig::default()
        };
        run_faulted_backend(
            ShardedBackend::spawn_with(sites, SumCoord::default(), config).unwrap(),
        );
    }

    #[test]
    fn backends_reject_small_clusters() {
        assert!(DeterministicBackend::new(vec![EchoSite], SumCoord::default()).is_err());
        assert!(ThreadedBackend::spawn(vec![EchoSite], SumCoord::default()).is_err());
        assert!(ShardedBackend::spawn(vec![EchoSite], SumCoord::default()).is_err());
    }
}
