//! Property-based tests of the AIMD flow controller: the window-bound,
//! monotone-decrease, and determinism invariants must hold for arbitrary
//! signal sequences, not just the unit tests' hand-built ones. The
//! free-running drivers lean on exactly these properties — a window that
//! escapes its bounds is an unbounded run length, and a non-deterministic
//! controller would make the controller trace unreproducible.

use dtrack_sim::{AimdController, FlowControlConfig};
use proptest::prelude::*;

/// One controller signal, decoded from a fuzzed `(op, site)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    CleanRun(usize),
    DriftSite(usize),
    DriftAll,
}

fn decode(ops: &[(u8, u8)], k: usize) -> Vec<Op> {
    ops.iter()
        .map(|&(op, site)| {
            let site = usize::from(site) % k;
            match op % 4 {
                // Clean runs dominate the mix, as they do in practice.
                0 | 1 => Op::CleanRun(site),
                2 => Op::DriftSite(site),
                _ => Op::DriftAll,
            }
        })
        .collect()
}

fn apply(controller: &mut AimdController, op: Op) {
    match op {
        Op::CleanRun(site) => controller.clean_run(site),
        Op::DriftSite(site) => controller.drift_site(site),
        Op::DriftAll => controller.drift_all(),
    }
}

fn config(win_min: u32, span: u32, increase: u32) -> FlowControlConfig {
    FlowControlConfig {
        win_min,
        win_max: win_min + span,
        initial: win_min + span / 2,
        increase,
        ..FlowControlConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every per-site window stays inside `[win_min, win_max]` no matter
    /// what order clean runs, per-site drift, and global drift arrive in.
    #[test]
    fn windows_stay_within_bounds(
        ops in prop::collection::vec((0u8..4, 0u8..8), 0..300),
        k in 1usize..8,
        win_min in 1u32..32,
        span in 0u32..256,
        increase in 0u32..64,
    ) {
        let cfg = config(win_min, span, increase);
        cfg.validate().expect("generated config must be valid");
        let mut controller = AimdController::new(k, cfg);
        for op in decode(&ops, k) {
            apply(&mut controller, op);
            for site in 0..k {
                let w = controller.window(site);
                prop_assert!(
                    (cfg.win_min..=cfg.win_max).contains(&w),
                    "window {w} escaped [{}, {}] after {op:?}",
                    cfg.win_min,
                    cfg.win_max
                );
            }
        }
    }

    /// Multiplicative decrease is monotone: a drift signal never grows
    /// any window, and the drifted site's window shrinks whenever it has
    /// room above the floor. Clean runs never shrink a window.
    #[test]
    fn decrease_is_monotone_and_increase_never_shrinks(
        ops in prop::collection::vec((0u8..4, 0u8..8), 0..300),
        k in 1usize..8,
        span in 0u32..256,
    ) {
        let cfg = config(4, span, 8);
        let mut controller = AimdController::new(k, cfg);
        for op in decode(&ops, k) {
            let before: Vec<u32> = (0..k).map(|s| controller.window(s)).collect();
            apply(&mut controller, op);
            for site in 0..k {
                let (b, a) = (before[site], controller.window(site));
                match op {
                    Op::CleanRun(s) if s == site => prop_assert!(a >= b),
                    Op::DriftSite(s) if s == site => {
                        prop_assert!(a <= b);
                        if b > cfg.win_min {
                            prop_assert!(a < b, "drift left a raisable window at {b}");
                        }
                    }
                    Op::DriftAll => prop_assert!(a <= b),
                    // Signals for other sites must not touch this one.
                    _ => prop_assert_eq!(a, b),
                }
            }
        }
    }

    /// The controller is a pure state machine: replaying the same signal
    /// sequence into a fresh controller reproduces the identical trace —
    /// every window, drift count, and backoff count.
    #[test]
    fn identical_signals_produce_identical_traces(
        ops in prop::collection::vec((0u8..4, 0u8..8), 0..300),
        k in 1usize..8,
    ) {
        let cfg = FlowControlConfig {
            win_min: 2,
            win_max: 512,
            initial: 16,
            increase: 8,
            ..FlowControlConfig::default()
        };
        let mut first = AimdController::new(k, cfg);
        let mut second = AimdController::new(k, cfg);
        for op in decode(&ops, k) {
            apply(&mut first, op);
            apply(&mut second, op);
            prop_assert_eq!(first.stats(), second.stats());
        }
    }
}
