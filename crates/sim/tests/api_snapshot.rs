//! The public-API snapshot lock: `api/dtrack-sim.txt` (repo root) must
//! match the generated surface exactly, so API changes are deliberate
//! two-file commits (code + snapshot), never accidents.

#[test]
fn public_api_matches_committed_snapshot() {
    let committed = include_str!("../../../api/dtrack-sim.txt");
    let generated = dtrack_sim::api::surface();
    assert_eq!(
        committed, generated,
        "public API surface drifted from api/dtrack-sim.txt — if the change \
         is intentional, regenerate with:\n  cargo run -p dtrack-sim \
         --example api_dump > api/dtrack-sim.txt"
    );
}
