//! Criterion micro-benchmarks of the local-summary substrate: per-update
//! cost of SpaceSaving, Misra–Gries, Greenwald–Khanna, and the
//! order-statistic treap, plus summary extraction and merge.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dtrack_sketch::{
    EquiDepthSummary, ExactOrdered, GreenwaldKhanna, MergedSummary, MisraGries, SpaceSaving,
};
use dtrack_workload::{Generator, Zipf};

const N: u64 = 50_000;

fn stream(seed: u64) -> Vec<u64> {
    let mut g = Zipf::new(1 << 24, 1.1, seed);
    (0..N).map(|_| g.next_item()).collect()
}

fn bench_freq_sketches(c: &mut Criterion) {
    let items = stream(1);
    let mut g = c.benchmark_group("freq_sketch_observe");
    g.throughput(Throughput::Elements(N));
    g.bench_function("spacesaving_1k", |b| {
        b.iter(|| {
            let mut s = SpaceSaving::new(1000);
            for &x in &items {
                s.observe(black_box(x));
            }
            s.total()
        })
    });
    g.bench_function("misra_gries_1k", |b| {
        b.iter(|| {
            let mut s = MisraGries::new(1000);
            for &x in &items {
                s.observe(black_box(x));
            }
            s.total()
        })
    });
    g.finish();
}

fn bench_order_stores(c: &mut Criterion) {
    let items = stream(2);
    let mut g = c.benchmark_group("order_store_insert");
    g.throughput(Throughput::Elements(N));
    g.bench_function("treap", |b| {
        b.iter(|| {
            let mut s = ExactOrdered::new();
            for &x in &items {
                s.insert(black_box(x));
            }
            s.len()
        })
    });
    g.bench_function("gk_eps01", |b| {
        b.iter(|| {
            let mut s = GreenwaldKhanna::new(0.01);
            for &x in &items {
                s.observe(black_box(x));
            }
            s.total()
        })
    });
    g.finish();

    let mut treap = ExactOrdered::new();
    for &x in &items {
        treap.insert(x);
    }
    c.bench_function("treap_rank", |b| {
        b.iter(|| treap.rank_lt(black_box(1 << 23)))
    });
    c.bench_function("treap_select", |b| {
        b.iter(|| treap.select(black_box(N / 3)))
    });
}

fn bench_summaries(c: &mut Criterion) {
    let mut sorted = stream(3);
    sorted.sort_unstable();
    c.bench_function("equidepth_from_sorted", |b| {
        b.iter(|| EquiDepthSummary::from_sorted(black_box(&sorted), 100))
    });
    let parts: Vec<EquiDepthSummary> = (0..8)
        .map(|i| {
            let mut s = stream(10 + i);
            s.sort_unstable();
            EquiDepthSummary::from_sorted(&s, 100)
        })
        .collect();
    let merged = MergedSummary::new(parts);
    c.bench_function("merged_rank_estimate", |b| {
        b.iter(|| merged.rank_estimate(black_box(1 << 23)))
    });
    c.bench_function("merged_select", |b| {
        b.iter(|| merged.select(black_box(4 * N / 2)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_freq_sketches, bench_order_stores, bench_summaries
);
criterion_main!(benches);
