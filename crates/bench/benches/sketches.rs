//! Criterion micro-benchmarks of the local-summary substrate: per-update
//! cost of SpaceSaving, Misra–Gries, Greenwald–Khanna, and the
//! order-statistic treap, plus summary extraction, merge, and the
//! discrete samplers behind the workload generators.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dtrack_sketch::{
    EquiDepthSummary, ExactOrdered, GreenwaldKhanna, MergedSummary, MisraGries, SpaceSaving,
};
use dtrack_workload::{AliasTable, Generator, IndexedCdf, Zipf};

const N: u64 = 50_000;

fn stream(seed: u64) -> Vec<u64> {
    let mut g = Zipf::new(1 << 24, 1.1, seed);
    (0..N).map(|_| g.next_item()).collect()
}

fn bench_freq_sketches(c: &mut Criterion) {
    let items = stream(1);
    let mut g = c.benchmark_group("freq_sketch_observe");
    g.throughput(Throughput::Elements(N));
    g.bench_function("spacesaving_1k", |b| {
        b.iter(|| {
            let mut s = SpaceSaving::new(1000);
            for &x in &items {
                s.observe(black_box(x));
            }
            s.total()
        })
    });
    g.bench_function("misra_gries_1k", |b| {
        b.iter(|| {
            let mut s = MisraGries::new(1000);
            for &x in &items {
                s.observe(black_box(x));
            }
            s.total()
        })
    });
    g.finish();
}

fn bench_order_stores(c: &mut Criterion) {
    let items = stream(2);
    let mut g = c.benchmark_group("order_store_insert");
    g.throughput(Throughput::Elements(N));
    g.bench_function("treap", |b| {
        b.iter(|| {
            let mut s = ExactOrdered::new();
            for &x in &items {
                s.insert(black_box(x));
            }
            s.len()
        })
    });
    g.bench_function("gk_eps01", |b| {
        b.iter(|| {
            let mut s = GreenwaldKhanna::new(0.01);
            for &x in &items {
                s.observe(black_box(x));
            }
            s.total()
        })
    });
    g.finish();

    let mut treap = ExactOrdered::new();
    for &x in &items {
        treap.insert(x);
    }
    c.bench_function("treap_rank", |b| {
        b.iter(|| treap.rank_lt(black_box(1 << 23)))
    });
    c.bench_function("treap_select", |b| {
        b.iter(|| treap.select(black_box(N / 3)))
    });
}

fn bench_summaries(c: &mut Criterion) {
    let mut sorted = stream(3);
    sorted.sort_unstable();
    c.bench_function("equidepth_from_sorted", |b| {
        b.iter(|| EquiDepthSummary::from_sorted(black_box(&sorted), 100))
    });
    let parts: Vec<EquiDepthSummary> = (0..8)
        .map(|i| {
            let mut s = stream(10 + i);
            s.sort_unstable();
            EquiDepthSummary::from_sorted(&s, 100)
        })
        .collect();
    let merged = MergedSummary::new(parts);
    c.bench_function("merged_rank_estimate", |b| {
        b.iter(|| merged.rank_estimate(black_box(1 << 23)))
    });
    c.bench_function("merged_select", |b| {
        b.iter(|| merged.select(black_box(4 * N / 2)))
    });
}

/// The three ways to invert a Zipf CDF, on identical draws: binary search
/// (the seed implementation), the guide table (bit-identical results,
/// expected O(1)), and the alias method (worst-case O(1), different
/// stream). See DESIGN.md §"Sampling discrete distributions in O(1)".
fn bench_samplers(c: &mut Criterion) {
    let n = 1u64 << 20;
    let s = 1.2f64;
    // The production table builders, so the comparison always measures the
    // exact tables the generator samples.
    let cdf = dtrack_workload::gen::zipf_cdf(n, s);
    let pmf = dtrack_workload::gen::zipf_weights(n, s);
    let indexed = IndexedCdf::new(cdf.clone());
    let alias = AliasTable::new(&pmf);
    // Deterministic uniform draws, reused by all three samplers.
    let draws: Vec<f64> = {
        let mut st = 0x9E37u64;
        (0..10_000)
            .map(|_| {
                st = st
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (st >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
            })
            .collect()
    };
    let mut g = c.benchmark_group("zipf_rank_sample");
    g.throughput(Throughput::Elements(draws.len() as u64));
    g.bench_function("partition_point", |b| {
        b.iter(|| {
            draws
                .iter()
                .map(|&u| cdf.partition_point(|&c| c < black_box(u)))
                .sum::<usize>()
        })
    });
    g.bench_function("indexed_cdf", |b| {
        b.iter(|| {
            draws
                .iter()
                .map(|&u| indexed.lookup(black_box(u)))
                .sum::<usize>()
        })
    });
    g.bench_function("alias_table", |b| {
        b.iter(|| {
            draws
                .iter()
                .map(|&u| alias.sample(black_box(u)))
                .sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_freq_sketches, bench_order_stores, bench_summaries, bench_samplers
);
criterion_main!(benches);
