//! Criterion micro-benchmarks of per-item protocol cost: the paper claims
//! "all the algorithms proposed in this paper can be implemented both
//! space- and time-efficiently" — these benches quantify the per-arrival
//! processing cost at a site and end-to-end through the cluster.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dtrack_core::allq::AllQConfig;
use dtrack_core::hh::HhConfig;
use dtrack_core::quantile::QuantileConfig;
use dtrack_sim::SiteId;
use dtrack_workload::{Generator, Zipf};

const FEED: u64 = 10_000;

fn bench_hh_feed(c: &mut Criterion) {
    let mut g = c.benchmark_group("hh_feed");
    g.throughput(Throughput::Elements(FEED));
    for k in [4u32, 16] {
        g.bench_with_input(BenchmarkId::new("exact", k), &k, |b, &k| {
            let config = HhConfig::new(k, 0.02).unwrap();
            b.iter_batched(
                || {
                    let mut cluster = dtrack_core::hh::exact_cluster(config).unwrap();
                    // Pre-warm so the steady-state path is measured.
                    let mut gen = Zipf::new(1 << 20, 1.1, 1);
                    for i in 0..20_000u64 {
                        cluster
                            .feed(SiteId((i % k as u64) as u32), gen.next_item())
                            .unwrap();
                    }
                    (cluster, Zipf::new(1 << 20, 1.1, 2))
                },
                |(mut cluster, mut gen)| {
                    for i in 0..FEED {
                        cluster
                            .feed(SiteId((i % k as u64) as u32), black_box(gen.next_item()))
                            .unwrap();
                    }
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_quantile_feed(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantile_feed");
    g.throughput(Throughput::Elements(FEED));
    g.bench_function("median_exact_k8", |b| {
        let config = QuantileConfig::median(8, 0.05).unwrap();
        b.iter_batched(
            || {
                let mut cluster = dtrack_core::quantile::exact_cluster(config).unwrap();
                let mut gen = Zipf::new(1 << 30, 1.1, 1);
                for i in 0..20_000u64 {
                    cluster
                        .feed(SiteId((i % 8) as u32), gen.next_item())
                        .unwrap();
                }
                (cluster, Zipf::new(1 << 30, 1.1, 2))
            },
            |(mut cluster, mut gen)| {
                for i in 0..FEED {
                    cluster
                        .feed(SiteId((i % 8) as u32), black_box(gen.next_item()))
                        .unwrap();
                }
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_allq_feed(c: &mut Criterion) {
    let mut g = c.benchmark_group("allq_feed");
    g.throughput(Throughput::Elements(FEED));
    g.bench_function("exact_k8_eps05", |b| {
        let config = AllQConfig::new(8, 0.05).unwrap();
        b.iter_batched(
            || {
                let mut cluster = dtrack_core::allq::exact_cluster(config).unwrap();
                let mut gen = Zipf::new(1 << 30, 1.1, 1);
                for i in 0..60_000u64 {
                    cluster
                        .feed(SiteId((i % 8) as u32), gen.next_item())
                        .unwrap();
                }
                (cluster, Zipf::new(1 << 30, 1.1, 2))
            },
            |(mut cluster, mut gen)| {
                for i in 0..FEED {
                    cluster
                        .feed(SiteId((i % 8) as u32), black_box(gen.next_item()))
                        .unwrap();
                }
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let config = AllQConfig::new(8, 0.05).unwrap();
    let mut cluster = dtrack_core::allq::exact_cluster(config).unwrap();
    let mut gen = Zipf::new(1 << 30, 1.1, 1);
    for i in 0..200_000u64 {
        cluster
            .feed(SiteId((i % 8) as u32), gen.next_item())
            .unwrap();
    }
    let coord_snapshot = cluster.into_parts().0;
    c.bench_function("allq_quantile_query", |b| {
        b.iter(|| coord_snapshot.quantile(black_box(0.37)).unwrap())
    });
    c.bench_function("allq_rank_query", |b| {
        b.iter(|| coord_snapshot.rank_lt(black_box(1 << 29)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hh_feed, bench_quantile_feed, bench_allq_feed, bench_queries
);
criterion_main!(benches);
