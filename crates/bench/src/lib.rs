//! # dtrack-bench — the experiment harness
//!
//! Regenerates, as tables, the empirical counterpart of every theorem and
//! the single figure in Yi & Zhang (PODS 2009). The paper has no measured
//! evaluation section — its "results" are bounds — so each experiment
//! demonstrates the *shape* of a bound: how communication scales with n,
//! k, and ε; how the lower-bound adversaries force cost; and how the
//! structural invariants of Figure 1 hold over time. EXPERIMENTS.md maps
//! each experiment id to the claim it validates and records measured
//! numbers.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p dtrack-bench --bin experiments -- all
//! ```
//!
//! or a single experiment by id (`e1` … `e16`). Each table is printed and
//! also written as CSV under `results/`.

pub mod exp_allq;
pub mod exp_hh;
pub mod exp_lb;
pub mod exp_misc;
pub mod exp_quantile;
pub mod smoke;
pub mod table;

pub use table::Table;

/// All experiment ids with a short description, in order.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    ("e1", "Thm 2.1 — heavy-hitter cost vs n (log n shape)"),
    ("e2", "Thm 2.1 — heavy-hitter cost vs k (linear shape)"),
    (
        "e3",
        "Thm 2.1 — heavy-hitter cost vs 1/eps, vs CGMR 1/eps^2",
    ),
    (
        "e4",
        "HH correctness: continuous oracle check + observed error",
    ),
    (
        "e5",
        "Thm 2.4 — adversarial lower bound forces Omega(k) per change",
    ),
    ("e6", "Thm 3.1 — median cost vs n (log n shape)"),
    ("e7", "Thm 3.1 — quantile cost vs k and vs 1/eps"),
    (
        "e8",
        "Quantile correctness across phi: observed rank error vs eps*n",
    ),
    ("e9", "Thm 3.2 — median lower-bound construction"),
    (
        "e10",
        "Thm 4.1 — all-quantiles cost vs eps, vs CGMR baseline",
    ),
    ("e11", "All-quantiles rank-query accuracy"),
    (
        "e12",
        "Figure 1 — structural invariants of the quantile tree",
    ),
    ("e13", "Small-space sites: per-site state, exact vs sketch"),
    ("e14", "Naive forward-all crossover (small n)"),
    ("e15", "Ablation: HH re-sync trigger (k/2, k, 2k signals)"),
    ("e16", "Ablation: quantile interval granularity"),
    (
        "e17",
        "§5 remark — randomized sampling vs deterministic, crossover in k",
    ),
    ("e18", "§5 open problem — sliding-window heavy hitters"),
];

/// Dispatch an experiment by id. Returns the produced tables.
pub fn run(id: &str) -> Option<Vec<Table>> {
    let tables = match id {
        "e1" => vec![exp_hh::e1_cost_vs_n()],
        "e2" => vec![exp_hh::e2_cost_vs_k()],
        "e3" => vec![exp_hh::e3_cost_vs_eps_vs_baseline()],
        "e4" => vec![exp_hh::e4_accuracy()],
        "e5" => vec![exp_lb::e5_hh_lower_bound()],
        "e6" => vec![exp_quantile::e6_cost_vs_n()],
        "e7" => exp_quantile::e7_cost_vs_k_and_eps(),
        "e8" => vec![exp_quantile::e8_accuracy()],
        "e9" => vec![exp_lb::e9_median_lower_bound()],
        "e10" => vec![exp_allq::e10_cost_vs_eps_vs_baseline()],
        "e11" => vec![exp_allq::e11_accuracy()],
        "e12" => vec![exp_allq::e12_figure1_invariants()],
        "e13" => vec![exp_misc::e13_space()],
        "e14" => vec![exp_misc::e14_naive_crossover()],
        "e15" => vec![exp_hh::e15_resync_ablation()],
        "e16" => vec![exp_quantile::e16_granularity_ablation()],
        "e17" => vec![exp_misc::e17_sampling_vs_deterministic()],
        "e18" => vec![exp_misc::e18_sliding_window()],
        _ => return None,
    };
    Some(tables)
}
