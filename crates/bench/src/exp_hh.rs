//! Heavy-hitter experiments: Theorem 2.1 scaling shapes, continuous
//! correctness, and the re-sync ablation.

use dtrack_core::hh::{exact_cluster, ExactHhSite, HhConfig, HhCoordinator};
use dtrack_core::ExactOracle;
use dtrack_sim::{Cluster, SiteId};
use dtrack_workload::{Assignment, Generator, RoundRobin, ShiftingZipf, Zipf};

use crate::table::{f3, Table};

fn run_hh(
    k: u32,
    epsilon: f64,
    n: u64,
    gen: &mut dyn Generator,
    assign: &mut dyn Assignment,
) -> Cluster<ExactHhSite, HhCoordinator> {
    let config = HhConfig::new(k, epsilon).expect("valid config");
    let mut cluster = exact_cluster(config).expect("cluster");
    for _ in 0..n {
        cluster
            .feed(assign.next_site(), gen.next_item())
            .expect("feed");
    }
    cluster
}

/// Theoretical unit for Theorem 2.1: k/ε · ln n.
fn hh_bound(k: u32, epsilon: f64, n: u64) -> f64 {
    k as f64 / epsilon * (n as f64).ln()
}

/// E1 — cost vs n at fixed k, ε. The words/(k/ε·ln n) ratio must be
/// roughly flat: that is the Theorem 2.1 shape.
pub fn e1_cost_vs_n() -> Table {
    let (k, epsilon) = (10u32, 0.01f64);
    let mut t = Table::new(
        "e1_hh_cost_vs_n",
        "E1  Thm 2.1: heavy-hitter communication vs n (k=10, eps=0.01, Zipf 1.1)",
        &["n", "words", "messages", "words/(k/eps ln n)"],
    );
    for n in [100_000u64, 1_000_000, 10_000_000] {
        let mut gen = Zipf::new(1 << 20, 1.1, 42);
        let mut assign = RoundRobin::new(k);
        let cluster = run_hh(k, epsilon, n, &mut gen, &mut assign);
        let words = cluster.meter().total_words();
        t.row([
            n.to_string(),
            words.to_string(),
            cluster.meter().total_messages().to_string(),
            f3(words as f64 / hh_bound(k, epsilon, n)),
        ]);
    }
    t
}

/// E2 — cost vs k at fixed n, ε. Words should grow linearly in k.
pub fn e2_cost_vs_k() -> Table {
    let (n, epsilon) = (1_000_000u64, 0.02f64);
    let mut t = Table::new(
        "e2_hh_cost_vs_k",
        "E2  Thm 2.1: heavy-hitter communication vs k (n=1e6, eps=0.02)",
        &["k", "words", "words/k", "words/(k/eps ln n)"],
    );
    for k in [2u32, 4, 8, 16, 32, 64] {
        let mut gen = Zipf::new(1 << 20, 1.1, 7);
        let mut assign = RoundRobin::new(k);
        let cluster = run_hh(k, epsilon, n, &mut gen, &mut assign);
        let words = cluster.meter().total_words();
        t.row([
            k.to_string(),
            words.to_string(),
            (words / k as u64).to_string(),
            f3(words as f64 / hh_bound(k, epsilon, n)),
        ]);
    }
    t
}

/// E3 — cost vs ε, ours against the CGMR'05 baseline. Ours scales as 1/ε,
/// the baseline as 1/ε²: the ratio column is the paper's Θ(1/ε)
/// improvement.
pub fn e3_cost_vs_eps_vs_baseline() -> Table {
    let (k, n) = (8u32, 500_000u64);
    let mut t = Table::new(
        "e3_hh_cost_vs_eps",
        "E3  Thm 2.1 vs prior art: words vs eps (k=8, n=5e5)",
        &["eps", "yz_words", "cgmr_words", "cgmr/yz", "yz*eps (flat)"],
    );
    for epsilon in [0.1f64, 0.05, 0.02, 0.01, 0.005] {
        let mut gen = Zipf::new(1 << 20, 1.1, 3);
        let mut assign = RoundRobin::new(k);
        let ours = run_hh(k, epsilon, n, &mut gen, &mut assign)
            .meter()
            .total_words();
        // CGMR tracks all quantiles (and hence heavy hitters) by summary
        // re-shipping.
        let config = dtrack_baseline::CgmrConfig::new(k, epsilon).expect("config");
        let mut cluster = dtrack_baseline::cgmr::exact_cluster(config).expect("cluster");
        let mut gen = Zipf::new(1 << 20, 1.1, 3);
        for i in 0..n {
            cluster
                .feed(SiteId((i % k as u64) as u32), gen.next_item())
                .expect("feed");
        }
        let cgmr = cluster.meter().total_words();
        t.row([
            epsilon.to_string(),
            ours.to_string(),
            cgmr.to_string(),
            f3(cgmr as f64 / ours as f64),
            f3(ours as f64 * epsilon),
        ]);
    }
    t
}

/// E4 — continuous correctness: feed a shifting-hot-set stream, check the
/// reported set against the exact oracle at every sampling point, and
/// report the worst observed frequency-estimate error.
pub fn e4_accuracy() -> Table {
    let (k, epsilon, phi, n) = (6u32, 0.02f64, 0.05f64, 400_000u64);
    let config = HhConfig::new(k, epsilon).expect("config");
    let mut cluster = exact_cluster(config).expect("cluster");
    let mut oracle = ExactOracle::new();
    let mut gen = ShiftingZipf::new(1 << 20, 1.3, 50_000, 11);
    let mut assign = RoundRobin::new(k);
    let mut violations = 0u64;
    let mut checks = 0u64;
    let mut max_freq_err = 0.0f64;
    for i in 0..n {
        let x = gen.next_item();
        oracle.observe(x);
        cluster.feed(assign.next_site(), x).expect("feed");
        if i % 997 == 0 && i > 0 {
            checks += 1;
            let reported = cluster.coordinator().heavy_hitters(phi).expect("query");
            if oracle.check_heavy_hitters(&reported, phi, epsilon).is_some() {
                violations += 1;
            }
            for x in oracle.heavy_hitters(phi) {
                let est = cluster.coordinator().frequency(x);
                let truth = oracle.frequency(x);
                let err = (truth.saturating_sub(est)) as f64 / oracle.total() as f64;
                max_freq_err = max_freq_err.max(err);
            }
        }
    }
    let mut t = Table::new(
        "e4_hh_accuracy",
        "E4  HH correctness under a shifting hot set (k=6, eps=0.02, phi=0.05)",
        &["checks", "violations", "max freq err / n", "eps/3 budget"],
    );
    t.row([
        checks.to_string(),
        violations.to_string(),
        f3(max_freq_err),
        f3(epsilon / 3.0),
    ]);
    t
}

/// E15 — ablation of the re-sync trigger (the paper re-syncs after k
/// `all`-signals).
pub fn e15_resync_ablation() -> Table {
    let (k, epsilon, n) = (16u32, 0.02f64, 1_000_000u64);
    let mut t = Table::new(
        "e15_hh_resync_ablation",
        "E15 Ablation: re-sync after {k/2, k, 2k, 4k} all-signals (k=16, eps=0.02, n=1e6)",
        &["resync_after", "words", "resyncs", "C.m deficit (x eps m/3)"],
    );
    for mult in [0.5f64, 1.0, 2.0, 4.0] {
        let resync = ((k as f64 * mult) as u32).max(1);
        let config = HhConfig::new(k, epsilon)
            .expect("config")
            .with_resync_after(resync);
        let mut cluster = exact_cluster(config).expect("cluster");
        let mut gen = Zipf::new(1 << 20, 1.1, 9);
        let mut assign = RoundRobin::new(k);
        for _ in 0..n {
            cluster
                .feed(assign.next_site(), gen.next_item())
                .expect("feed");
        }
        let deficit = (n - cluster.coordinator().global_count()) as f64;
        t.row([
            resync.to_string(),
            cluster.meter().total_words().to_string(),
            cluster.coordinator().resyncs().to_string(),
            f3(deficit / (epsilon * n as f64 / 3.0)),
        ]);
    }
    t
}
