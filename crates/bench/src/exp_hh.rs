//! Heavy-hitter experiments: Theorem 2.1 scaling shapes, continuous
//! correctness, and the re-sync ablation.
//!
//! Cost-shape and ablation rows are metered through the shared
//! `dtrack-testkit` scenario harness; the differential row (E4) runs the
//! same harness in checking mode, so a guarantee violation fails the
//! experiment instead of silently producing a bad table.

use dtrack_testkit::{
    measure_cost, run_scenario, AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario,
};

use crate::table::{f3, Table};

/// The standard heavy-hitter experiment workload: Zipf values over a
/// 2²⁰ universe, round-robin site assignment.
fn hh_scenario(k: u32, epsilon: f64, n: u64, seed: u64) -> Scenario {
    Scenario::new(
        GeneratorSpec::Zipf {
            universe: 1 << 20,
            s: 1.1,
        },
        AssignmentSpec::RoundRobin,
        k,
        epsilon,
        n,
        seed,
        ProtocolSpec::HhExact,
    )
}

/// Theoretical unit for Theorem 2.1: k/ε · ln n.
fn hh_bound(k: u32, epsilon: f64, n: u64) -> f64 {
    k as f64 / epsilon * (n as f64).ln()
}

/// E1 — cost vs n at fixed k, ε. The words/(k/ε·ln n) ratio must be
/// roughly flat: that is the Theorem 2.1 shape.
pub fn e1_cost_vs_n() -> Table {
    let (k, epsilon) = (10u32, 0.01f64);
    let mut t = Table::new(
        "e1_hh_cost_vs_n",
        "E1  Thm 2.1: heavy-hitter communication vs n (k=10, eps=0.01, Zipf 1.1)",
        &["n", "words", "messages", "words/(k/eps ln n)"],
    );
    for n in [100_000u64, 1_000_000, 10_000_000] {
        let r = measure_cost(&hh_scenario(k, epsilon, n, 42)).expect("scenario");
        t.row([
            n.to_string(),
            r.words.to_string(),
            r.messages.to_string(),
            f3(r.words as f64 / hh_bound(k, epsilon, n)),
        ]);
    }
    t
}

/// E2 — cost vs k at fixed n, ε. Words should grow linearly in k.
pub fn e2_cost_vs_k() -> Table {
    let (n, epsilon) = (1_000_000u64, 0.02f64);
    let mut t = Table::new(
        "e2_hh_cost_vs_k",
        "E2  Thm 2.1: heavy-hitter communication vs k (n=1e6, eps=0.02)",
        &["k", "words", "words/k", "words/(k/eps ln n)"],
    );
    for k in [2u32, 4, 8, 16, 32, 64] {
        let r = measure_cost(&hh_scenario(k, epsilon, n, 7)).expect("scenario");
        t.row([
            k.to_string(),
            r.words.to_string(),
            (r.words / k as u64).to_string(),
            f3(r.words as f64 / hh_bound(k, epsilon, n)),
        ]);
    }
    t
}

/// E3 — cost vs ε, ours against the CGMR'05 baseline. Ours scales as 1/ε,
/// the baseline as 1/ε²: the ratio column is the paper's Θ(1/ε)
/// improvement. Both protocols see the identical stream (same scenario
/// seed and generator).
pub fn e3_cost_vs_eps_vs_baseline() -> Table {
    let (k, n) = (8u32, 500_000u64);
    let mut t = Table::new(
        "e3_hh_cost_vs_eps",
        "E3  Thm 2.1 vs prior art: words vs eps (k=8, n=5e5)",
        &["eps", "yz_words", "cgmr_words", "cgmr/yz", "yz*eps (flat)"],
    );
    for epsilon in [0.1f64, 0.05, 0.02, 0.01, 0.005] {
        let base = hh_scenario(k, epsilon, n, 3);
        let ours = measure_cost(&base).expect("scenario").words;
        // CGMR tracks all quantiles (and hence heavy hitters) by summary
        // re-shipping.
        let cgmr = measure_cost(&Scenario {
            protocol: ProtocolSpec::Cgmr,
            ..base
        })
        .expect("scenario")
        .words;
        t.row([
            epsilon.to_string(),
            ours.to_string(),
            cgmr.to_string(),
            f3(cgmr as f64 / ours as f64),
            f3(ours as f64 * epsilon),
        ]);
    }
    t
}

/// E4 — continuous correctness: a shifting-hot-set stream through the
/// differential harness, which checks the reported heavy-hitter sets and
/// count invariants against the exact oracle at every checkpoint (a
/// violation panics the experiment).
pub fn e4_accuracy() -> Table {
    let (k, epsilon, n) = (6u32, 0.02f64, 400_000u64);
    let scenario = Scenario::new(
        GeneratorSpec::ShiftingZipf {
            universe: 1 << 20,
            s: 1.3,
            shift_every: 50_000,
        },
        AssignmentSpec::RoundRobin,
        k,
        epsilon,
        n,
        11,
        ProtocolSpec::HhExact,
    )
    // Pin warm-up to the protocol default (k/ε items) rather than the
    // harness's n/8 differential-mode default, so the words column
    // measures Thm 2.1 tracking cost and stays comparable to E1–E3.
    .with_warmup((k as f64 / epsilon).ceil() as u64);
    let report = run_scenario(&scenario).expect("guarantee violated");
    let mut t = Table::new(
        "e4_hh_accuracy",
        "E4  HH correctness under a shifting hot set (k=6, eps=0.02)",
        &[
            "oracle checks",
            "violations",
            "words",
            "% of Thm 2.1 budget",
        ],
    );
    t.row([
        report.checks.to_string(),
        "0".to_owned(),
        report.words.to_string(),
        f3(100.0 * report.budget_used()),
    ]);
    t
}

/// E15 — ablation of the re-sync trigger (the paper re-syncs after k
/// `all`-signals).
pub fn e15_resync_ablation() -> Table {
    let (k, epsilon, n) = (16u32, 0.02f64, 1_000_000u64);
    let mut t = Table::new(
        "e15_hh_resync_ablation",
        "E15 Ablation: re-sync after {k/2, k, 2k, 4k} all-signals (k=16, eps=0.02, n=1e6)",
        &["resync_after", "words", "messages"],
    );
    for mult in [0.5f64, 1.0, 2.0, 4.0] {
        let resync = ((k as f64 * mult) as u32).max(1);
        let r = measure_cost(&hh_scenario(k, epsilon, n, 9).with_resync_after(resync))
            .expect("scenario");
        t.row([
            resync.to_string(),
            r.words.to_string(),
            r.messages.to_string(),
        ]);
    }
    t
}
