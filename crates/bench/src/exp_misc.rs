//! Space usage and the naive crossover.

use dtrack_core::hh::{HhConfig, HhCoordinator, HhSite, SketchHhSite};
use dtrack_core::quantile::{
    QuantileConfig, QuantileCoordinator, QuantileSite, SketchQuantileSite,
};
use dtrack_sim::{Cluster, SiteId};
use dtrack_sketch::{FreqStore, OrderStore};
use dtrack_workload::{Generator, Zipf};

use crate::table::{f3, Table};

/// E13 — per-site state, exact vs sketch: the paper's "Implementing with
/// small space" paragraphs promise O(1/ε) (SpaceSaving) for heavy hitters
/// and O(1/ε·log(εn)) (Greenwald–Khanna) for quantiles; the exact stores
/// grow with the distinct-item / stream size instead.
pub fn e13_space() -> Table {
    let (k, epsilon, n) = (4u32, 0.02f64, 400_000u64);
    let mut t = Table::new(
        "e13_space",
        "E13 Max per-site store entries, exact vs sketch (k=4, eps=0.02, n=4e5, Zipf 1.1)",
        &[
            "protocol",
            "exact entries",
            "sketch entries",
            "sketch/(1/eps)",
        ],
    );
    // Heavy hitters.
    let config = HhConfig::new(k, epsilon).expect("config");
    let mut exact = dtrack_core::hh::exact_cluster(config).expect("cluster");
    let mut sketched: Cluster<SketchHhSite, HhCoordinator> = {
        let sites = (0..k).map(|_| HhSite::sketched(config)).collect();
        Cluster::new(sites, HhCoordinator::new(config)).expect("cluster")
    };
    let mut gen = Zipf::new(1 << 20, 1.1, 3);
    for i in 0..n {
        let x = gen.next_item();
        let s = SiteId((i % k as u64) as u32);
        exact.feed(s, x).expect("feed");
        sketched.feed(s, x).expect("feed");
    }
    let exact_max = exact
        .sites()
        .iter()
        .map(|s| s.store().entries())
        .max()
        .unwrap_or(0);
    let sketch_max = sketched
        .sites()
        .iter()
        .map(|s| s.store().entries())
        .max()
        .unwrap_or(0);
    t.row([
        "heavy hitters".to_owned(),
        exact_max.to_string(),
        sketch_max.to_string(),
        f3(sketch_max as f64 * epsilon),
    ]);
    // Quantiles.
    let config = QuantileConfig::median(k, epsilon).expect("config");
    let mut exact = dtrack_core::quantile::exact_cluster(config).expect("cluster");
    let mut sketched: Cluster<SketchQuantileSite, QuantileCoordinator> = {
        let sites = (0..k).map(|_| QuantileSite::sketched(config)).collect();
        Cluster::new(sites, QuantileCoordinator::new(config)).expect("cluster")
    };
    let mut gen = Zipf::new(1 << 20, 1.1, 3);
    for i in 0..n {
        let x = gen.next_item();
        let s = SiteId((i % k as u64) as u32);
        exact.feed(s, x).expect("feed");
        sketched.feed(s, x).expect("feed");
    }
    let exact_max = exact
        .sites()
        .iter()
        .map(|s| OrderStore::entries(s.store()))
        .max()
        .unwrap_or(0);
    let sketch_max = sketched
        .sites()
        .iter()
        .map(|s| OrderStore::entries(s.store()))
        .max()
        .unwrap_or(0);
    t.row([
        "median".to_owned(),
        exact_max.to_string(),
        sketch_max.to_string(),
        f3(sketch_max as f64 * epsilon),
    ]);
    t
}

/// E17 — §5 remark: the randomized sampling tracker vs the deterministic
/// protocol as k grows. Sampling cost is dominated by S·log n independent
/// of k; the deterministic cost grows linearly in k — the crossover sits
/// near ε ≈ 1/k, "breaking the deterministic lower bound for ε = ω(1/k)".
pub fn e17_sampling_vs_deterministic() -> Table {
    let (epsilon, n) = (0.1f64, 400_000u64);
    let mut t = Table::new(
        "e17_sampling_vs_deterministic",
        "E17 Randomized sampling vs deterministic HH tracking (eps=0.1, n=4e5)",
        &["k", "deterministic_words", "sampling_words", "winner"],
    );
    for k in [4u32, 8, 16, 32, 64, 128] {
        let config = HhConfig::new(k, epsilon).expect("config");
        let mut det = dtrack_core::hh::exact_cluster(config).expect("cluster");
        let sconfig =
            dtrack_core::sampling::SamplingConfig::new(k, epsilon, 0.05, 1234).expect("config");
        let mut samp = dtrack_core::sampling::sampling_cluster(sconfig).expect("cluster");
        let mut gen = Zipf::new(1 << 20, 1.2, 77);
        for i in 0..n {
            let x = gen.next_item();
            let s = SiteId((i % k as u64) as u32);
            det.feed(s, x).expect("feed");
            samp.feed(s, x).expect("feed");
        }
        let d = det.meter().total_words();
        let s = samp.meter().total_words();
        t.row([
            k.to_string(),
            d.to_string(),
            s.to_string(),
            if s < d { "sampling" } else { "deterministic" }.to_owned(),
        ]);
    }
    t
}

/// E18 — §5 open problem: sliding-window heavy hitters. Cost per window
/// span is O(k/ε) words (the window analogue of the per-round bound) and
/// stays flat as the stream grows; accuracy is checked against the exact
/// window oracle.
pub fn e18_sliding_window() -> Table {
    use dtrack_core::window::{window_cluster, WindowHhConfig, WindowOracle};
    let (k, epsilon, phi) = (6u32, 0.05f64, 0.1f64);
    let w = 50_000u64;
    let mut t = Table::new(
        "e18_sliding_window",
        "E18 Sliding-window HH (k=6, eps=0.05, W=5e4, shifting hot set)",
        &["n", "words", "words/(n/W)/(k/eps)", "violations", "checks"],
    );
    for n in [200_000u64, 400_000, 800_000] {
        let config = WindowHhConfig::new(k, epsilon, w).expect("config");
        let mut cluster = window_cluster(config).expect("cluster");
        let mut oracle = WindowOracle::new(w);
        let mut gen = dtrack_workload::ShiftingZipf::new(1 << 20, 1.3, w / 2, 13);
        let mut violations = 0u64;
        let mut checks = 0u64;
        for i in 0..n {
            let x = gen.next_item();
            oracle.observe(x);
            cluster
                .feed(SiteId((i % k as u64) as u32), x)
                .expect("feed");
            if i % 2003 == 0 && i > w {
                checks += 1;
                let hh = cluster.coordinator().heavy_hitters(phi).expect("query");
                if oracle.check(&hh, phi, 2.0 * epsilon).is_some() {
                    violations += 1;
                }
            }
        }
        let words = cluster.meter().total_words();
        let per_window_unit = words as f64 / (n as f64 / w as f64) / (k as f64 / epsilon);
        t.row([
            n.to_string(),
            words.to_string(),
            f3(per_window_unit),
            violations.to_string(),
            checks.to_string(),
        ]);
    }
    t
}

/// E14 — "if n is too small, a naive solution that transmits every
/// arrival would be the best": forward-all costs exactly 2n words, the
/// tracker pays its warm-up + rounds; find where tracking wins. Both
/// protocols are metered through the shared testkit harness on the
/// identical stream.
pub fn e14_naive_crossover() -> Table {
    use dtrack_testkit::{measure_cost, AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario};
    let (k, epsilon) = (8u32, 0.05f64);
    let mut t = Table::new(
        "e14_naive_crossover",
        "E14 Forward-all vs heavy-hitter tracking (k=8, eps=0.05)",
        &["n", "forward_all_words", "tracking_words", "winner"],
    );
    for n in [1_000u64, 5_000, 20_000, 100_000, 500_000, 2_000_000] {
        let base = Scenario::new(
            GeneratorSpec::Zipf {
                universe: 1 << 20,
                s: 1.2,
            },
            AssignmentSpec::RoundRobin,
            k,
            epsilon,
            n,
            5,
            ProtocolSpec::ForwardAll,
        );
        let f = measure_cost(&base).expect("scenario").words;
        let tr = measure_cost(&Scenario {
            protocol: ProtocolSpec::HhExact,
            ..base
        })
        .expect("scenario")
        .words;
        t.row([
            n.to_string(),
            f.to_string(),
            tr.to_string(),
            if tr < f { "tracking" } else { "forward-all" }.to_owned(),
        ]);
    }
    t
}
