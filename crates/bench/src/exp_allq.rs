//! All-quantiles experiments: Theorem 4.1 cost vs the CGMR baseline,
//! rank-query accuracy, and the Figure 1 structural invariants.
//!
//! The cost sweep (E10) is metered through the shared `dtrack-testkit`
//! scenario harness; E11 and E12 keep dedicated loops because they read
//! protocol internals (tree nodes, per-checkpoint worst errors) the
//! scenario abstraction deliberately does not expose.

use dtrack_core::allq::{exact_cluster, AllQConfig};
use dtrack_core::ExactOracle;
use dtrack_testkit::{measure_cost, AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario};
use dtrack_workload::{Assignment, Generator, RoundRobin, Uniform, Zipf};

use crate::table::{f3, Table};

/// E10 — all-quantiles communication vs ε: Yi–Zhang
/// O(k/ε·log n·log²(1/ε)) against CGMR O(k/ε²·log n). The last column is
/// the measured improvement factor, which should grow roughly like
/// 1/(ε·log²(1/ε)). Both protocols see the identical stream.
pub fn e10_cost_vs_eps_vs_baseline() -> Table {
    let (k, n) = (8u32, 500_000u64);
    let mut t = Table::new(
        "e10_allq_cost_vs_eps",
        "E10 Thm 4.1 vs CGMR'05: all-quantile words vs eps (k=8, n=5e5)",
        &["eps", "yz_words", "cgmr_words", "cgmr/yz"],
    );
    for epsilon in [0.1f64, 0.05, 0.02, 0.01] {
        let base = Scenario::new(
            GeneratorSpec::Uniform { universe: 1 << 40 },
            AssignmentSpec::RoundRobin,
            k,
            epsilon,
            n,
            29,
            ProtocolSpec::AllQExact,
        );
        let ours = measure_cost(&base).expect("scenario").words;
        let cgmr = measure_cost(&Scenario {
            protocol: ProtocolSpec::Cgmr,
            ..base
        })
        .expect("scenario")
        .words;
        t.row([
            epsilon.to_string(),
            ours.to_string(),
            cgmr.to_string(),
            f3(cgmr as f64 / ours as f64),
        ]);
    }
    t
}

/// E11 — rank-query accuracy of the structure across the whole universe,
/// as a fraction of the ε·n budget, on uniform and Zipf streams.
pub fn e11_accuracy() -> Table {
    let (k, epsilon, n) = (6u32, 0.05f64, 400_000u64);
    let mut t = Table::new(
        "e11_allq_accuracy",
        "E11 All-quantiles rank error / (eps n) at checkpoints (k=6, eps=0.05)",
        &["workload", "max rank err ratio", "max quantile err ratio"],
    );
    for workload in ["uniform", "zipf"] {
        let config = AllQConfig::new(k, epsilon).expect("config");
        let mut cluster = exact_cluster(config).expect("cluster");
        let mut oracle = ExactOracle::new();
        let mut u = Uniform::new(1 << 40, 31);
        let mut z = Zipf::new(1 << 20, 1.2, 31);
        let mut assign = RoundRobin::new(k);
        let mut max_rank = 0.0f64;
        let mut max_quant = 0.0f64;
        for i in 0..n {
            let x = if workload == "uniform" {
                u.next_item()
            } else {
                z.next_item()
            };
            oracle.observe(x);
            cluster.feed(assign.next_site(), x).expect("feed");
            if i % 20_011 == 0 && i > 0 {
                let budget = epsilon * oracle.total() as f64;
                for j in 1..20u64 {
                    let probe = j * ((1u64 << 40) / 20);
                    let err = cluster
                        .coordinator()
                        .rank_lt(probe)
                        .abs_diff(oracle.rank_lt(probe));
                    max_rank = max_rank.max(err as f64 / budget);
                }
                for phi in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
                    if let Some(q) = cluster.coordinator().quantile(phi).expect("query") {
                        let err = oracle.quantile_rank_error(q, phi) as f64 / budget;
                        max_quant = max_quant.max(err);
                    }
                }
            }
        }
        t.row([workload.to_owned(), f3(max_rank), f3(max_quant)]);
    }
    t
}

/// E12 — the Figure 1 invariants over time: tree height vs the h bound,
/// leaf count, worst leaf size vs εm/2, worst node-count error vs θm.
pub fn e12_figure1_invariants() -> Table {
    let (k, epsilon, n) = (6u32, 0.05f64, 600_000u64);
    let config = AllQConfig::new(k, epsilon).expect("config");
    let mut cluster = exact_cluster(config).expect("cluster");
    let mut oracle = ExactOracle::new();
    let mut gen = Uniform::new(1 << 40, 37);
    let mut assign = RoundRobin::new(k);
    let mut t = Table::new(
        "e12_figure1",
        "E12 Figure 1 invariants over time (k=6, eps=0.05)",
        &[
            "n",
            "height",
            "h bound",
            "leaves",
            "max leaf/(eps m/2)",
            "max node err/(theta m)",
        ],
    );
    for i in 0..n {
        let x = gen.next_item();
        oracle.observe(x);
        cluster.feed(assign.next_site(), x).expect("feed");
        if (i + 1) % 100_000 != 0 {
            continue;
        }
        let coord = cluster.coordinator();
        if coord.in_warmup() {
            continue;
        }
        let tree = coord.tree();
        let range_truth = |lo: u64, hi: Option<u64>| -> u64 {
            hi.map_or(oracle.total(), |h| oracle.rank_lt(h)) - oracle.rank_lt(lo)
        };
        let mut max_leaf = 0.0f64;
        for leaf in tree.leaves() {
            let r = tree.node(leaf).range;
            if r.hi.is_some_and(|h| h == r.lo + 1) {
                continue;
            }
            max_leaf =
                max_leaf.max(range_truth(r.lo, r.hi) as f64 / coord.leaf_bound().max(1) as f64);
        }
        let mut max_err = 0.0f64;
        for id in tree.live_nodes() {
            let r = tree.node(id).range;
            let truth = range_truth(r.lo, r.hi);
            let err = truth.saturating_sub(coord.node_count(id));
            max_err = max_err.max(err as f64 / coord.node_error_bound().max(1) as f64);
        }
        t.row([
            (i + 1).to_string(),
            tree.height().to_string(),
            config.height_bound().to_string(),
            tree.leaves().len().to_string(),
            f3(max_leaf),
            f3(max_err),
        ]);
    }
    t
}
