//! Experiment harness CLI. See EXPERIMENTS.md for the experiment index.
//!
//! ```text
//! cargo run --release -p dtrack-bench --bin experiments -- all
//! cargo run --release -p dtrack-bench --bin experiments -- e1 e5 e10
//! ```

use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments <all | smoke | e1..e18 ...> [--out DIR]");
        eprintln!("\nexperiments:");
        for (id, desc) in dtrack_bench::EXPERIMENTS {
            eprintln!("  {id:<4} {desc}");
        }
        eprintln!(
            "  smoke  per-protocol perf run, writes {}",
            dtrack_bench::smoke::SMOKE_SNAPSHOT
        );
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let mut explicit_out: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            match it.next() {
                Some(dir) => explicit_out = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }
            }
        } else {
            ids.push(a);
        }
    }
    // `smoke` composes with other ids instead of short-circuiting them:
    // `experiments e1 smoke --out d/` runs the smoke suite AND e1.
    let want_smoke = ids.iter().any(|i| i == "smoke");
    ids.retain(|i| i != "smoke");
    if ids.iter().any(|i| i == "all") {
        ids = dtrack_bench::EXPERIMENTS
            .iter()
            .map(|(id, _)| (*id).to_owned())
            .collect();
    }
    if want_smoke {
        let results = dtrack_bench::smoke::run_smoke();
        for r in &results {
            println!(
                "{:<60} {:>9} words {:>8.1} ms {:>12.0} items/s",
                r.scenario, r.words, r.wall_ms, r.items_per_sec
            );
        }
        println!(
            "geomean: {:.0} items/s over {} cells",
            dtrack_bench::smoke::geomean_items_per_sec(&results),
            results.len()
        );
        println!(
            "threaded batched/per-item speedup (geomean): {:.2}x",
            dtrack_bench::smoke::threaded_batched_speedup(&results)
        );
        let overhead = dtrack_bench::smoke::facade_overhead_geomean(&results);
        println!("facade/direct wall-clock overhead (geomean): {overhead:.3}x");
        // The documented acceptance ceiling, enforced: the facade must
        // cost <= 2% over the bare clusters (geomean over best-of-2
        // pairs on both backends, so scheduler noise is averaged out).
        if overhead > 1.02 {
            eprintln!("FAIL: facade overhead {overhead:.3}x exceeds the 1.02x ceiling");
            std::process::exit(1);
        }
        let scale = dtrack_bench::smoke::sharded_scale_speedup_k256(&results);
        println!("sharded/threaded ingest speedup at k=256 (geomean): {scale:.2}x");
        // The work-stealing pool's acceptance number, enforced: with 256
        // sites on a fixed worker pool, multiplexing must out-ingest
        // one-OS-thread-per-site.
        if scale <= 1.0 {
            eprintln!("FAIL: sharded k=256 speedup {scale:.2}x does not beat the threaded backend");
            std::process::exit(1);
        }
        let adaptive = dtrack_bench::smoke::adaptive_vs_fixed_throughput(&results);
        println!("adaptive/fixed free-running ingest throughput (geomean): {adaptive:.2}x");
        // The AIMD controller's no-regression gate, enforced: on a
        // healthy cluster adaptation must not ingest slower than the
        // old fixed window did.
        if adaptive < 1.0 {
            eprintln!("FAIL: adaptive flow control {adaptive:.2}x is slower than the fixed window");
            std::process::exit(1);
        }
        let drift = dtrack_bench::smoke::free_run_words_factor(&results);
        println!("worst free-running words factor over deterministic: {drift:.3}x");
        // The controller's drift contract, enforced: every free-running
        // cell's metered words stay within the testkit's budget headroom
        // of its pinned deterministic twin.
        if drift > dtrack_bench::smoke::FREE_WORDS_CEILING {
            eprintln!(
                "FAIL: free-running words drift {drift:.3}x exceeds the {:.1}x ceiling",
                dtrack_bench::smoke::FREE_WORDS_CEILING
            );
            std::process::exit(1);
        }
        let trace = dtrack_bench::smoke::trace_overhead_geomean(&results);
        println!("traced-off/pre-trace wall-clock overhead (geomean): {trace:.3}x");
        // The trace layer's hot-path contract, enforced: disabled
        // instrumentation (one relaxed load and a never-taken branch per
        // event site) must cost <= 2% over the bare pre-trace ingest
        // loop (geomean over best-of-2 deterministic pairs).
        if trace > 1.02 {
            eprintln!("FAIL: disabled-trace overhead {trace:.3}x exceeds the 1.02x ceiling");
            std::process::exit(1);
        }
        let tasks = dtrack_bench::smoke::async_vs_sharded_k4096(&results);
        // Recorded, not enforced: prices the async executor against the
        // work-stealing pool at k = 4096 on this hardware; the async
        // backend's acceptance gate is the equivalence matrix.
        println!("async/sharded ingest throughput at k=4096 (geomean): {tasks:.2}x");
        let json = dtrack_bench::smoke::smoke_json(&results);
        let snapshot = dtrack_bench::smoke::SMOKE_SNAPSHOT;
        let path = match &explicit_out {
            Some(dir) => {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("warning: could not create {}: {e}", dir.display());
                    std::process::exit(1);
                }
                dir.join(snapshot)
            }
            None => PathBuf::from(snapshot),
        };
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("warning: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
    let out_dir = explicit_out.unwrap_or_else(|| PathBuf::from("results"));
    let mut failed = false;
    for id in &ids {
        match dtrack_bench::run(id) {
            Some(tables) => {
                for t in tables {
                    println!("{t}");
                    if let Err(e) = t.write_csv(&out_dir) {
                        eprintln!(
                            "warning: could not write {}/{}.csv: {e}",
                            out_dir.display(),
                            t.slug
                        );
                    }
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
