//! Experiment harness CLI. See EXPERIMENTS.md for the experiment index.
//!
//! ```text
//! cargo run --release -p dtrack-bench --bin experiments -- all
//! cargo run --release -p dtrack-bench --bin experiments -- e1 e5 e10
//! ```

use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments <all | e1..e16 ...> [--out DIR]");
        eprintln!("\nexperiments:");
        for (id, desc) in dtrack_bench::EXPERIMENTS {
            eprintln!("  {id:<4} {desc}");
        }
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }
            }
        } else {
            ids.push(a);
        }
    }
    if ids.iter().any(|i| i == "all") {
        ids = dtrack_bench::EXPERIMENTS
            .iter()
            .map(|(id, _)| (*id).to_owned())
            .collect();
    }
    let mut failed = false;
    for id in &ids {
        match dtrack_bench::run(id) {
            Some(tables) => {
                for t in tables {
                    println!("{t}");
                    if let Err(e) = t.write_csv(&out_dir) {
                        eprintln!(
                            "warning: could not write {}/{}.csv: {e}",
                            out_dir.display(),
                            t.slug
                        );
                    }
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
