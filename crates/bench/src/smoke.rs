//! Smoke benchmark: fixed scenarios per protocol family, timed end-to-end
//! and emitted as a JSON snapshot.
//!
//! ```text
//! cargo run --release -p dtrack-bench --bin experiments -- smoke
//! ```
//!
//! writes `BENCH_pr2.json` — the current point of the repo's performance
//! trajectory (`BENCH_seed.json` is the frozen PR 1 baseline). Metered
//! words/messages are bit-for-bit deterministic (regressions there are
//! protocol changes, not noise); wall-clock throughput is indicative.
//!
//! Two cell sizes per protocol: n = 20 000 cells match the seed snapshot
//! one-to-one for before/after comparisons, and n = 200 000 throughput
//! cells (added in PR 2) keep per-item costs visible as the fixed
//! per-run overheads shrink.

use dtrack_testkit::{measure_cost, AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario};
use std::time::Instant;

/// File name of the smoke snapshot written by `experiments smoke`.
pub const SMOKE_SNAPSHOT: &str = "BENCH_pr2.json";

/// One timed smoke cell.
#[derive(Debug, Clone)]
pub struct SmokeResult {
    /// Replayable scenario name.
    pub scenario: String,
    /// Metered words (deterministic).
    pub words: u64,
    /// Metered messages (deterministic).
    pub messages: u64,
    /// Wall-clock time for the whole run.
    pub wall_ms: f64,
    /// Items fed per wall-clock second.
    pub items_per_sec: f64,
}

/// The protocol axis of the smoke matrix.
const SMOKE_PROTOCOLS: [ProtocolSpec; 9] = [
    ProtocolSpec::Counter,
    ProtocolSpec::HhExact,
    ProtocolSpec::HhSketched,
    ProtocolSpec::QuantileExact { phi: 0.5 },
    ProtocolSpec::QuantileSketched { phi: 0.5 },
    ProtocolSpec::AllQExact,
    ProtocolSpec::Cgmr,
    ProtocolSpec::Polling,
    ProtocolSpec::ForwardAll,
];

/// The smoke matrix: every protocol family at the seed-comparable size
/// (n = 20k) and at the PR 2 throughput size (n = 200k).
pub fn smoke_scenarios() -> Vec<Scenario> {
    let mut out = Vec::with_capacity(2 * SMOKE_PROTOCOLS.len());
    for n in [20_000u64, 200_000] {
        for protocol in SMOKE_PROTOCOLS {
            out.push(Scenario::new(
                GeneratorSpec::Zipf {
                    universe: 1 << 20,
                    s: 1.2,
                },
                AssignmentSpec::RoundRobin,
                4,
                0.1,
                n,
                1,
                protocol,
            ));
        }
    }
    out
}

/// Run the smoke matrix, timing each scenario.
///
/// Workload tables (the 2^20-entry Zipf CDF) are process-wide immutable
/// assets shared by every cell, so they are built once in an untimed
/// prewarm pass; the timed cells then measure ingest throughput, not
/// table construction. (The seed snapshot predates the shared cache and
/// paid the build inside every cell.)
pub fn run_smoke() -> Vec<SmokeResult> {
    let scenarios = smoke_scenarios();
    for scenario in &scenarios {
        // Building the stream forces the generator's tables into the
        // process-wide cache; dropping it immediately keeps this O(1).
        let _ = scenario.stream();
    }
    scenarios
        .iter()
        .map(|scenario| {
            let start = Instant::now();
            let report = measure_cost(scenario).expect("smoke scenario failed");
            let wall = start.elapsed();
            SmokeResult {
                scenario: report.scenario,
                words: report.words,
                messages: report.messages,
                wall_ms: wall.as_secs_f64() * 1e3,
                items_per_sec: scenario.n as f64 / wall.as_secs_f64().max(1e-9),
            }
        })
        .collect()
}

/// Geometric mean of `items_per_sec` over `results` (0.0 when empty).
pub fn geomean_items_per_sec(results: &[SmokeResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = results.iter().map(|r| r.items_per_sec.max(1.0).ln()).sum();
    (log_sum / results.len() as f64).exp()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render smoke results as a stable, human-diffable JSON document.
pub fn smoke_json(results: &[SmokeResult]) -> String {
    let mut out = String::from("{\n  \"schema\": \"dtrack-bench-smoke/v1\",\n  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"words\": {}, \"messages\": {}, \
             \"wall_ms\": {:.3}, \"items_per_sec\": {:.0}}}{}\n",
            json_escape(&r.scenario),
            r.words,
            r.messages,
            r.wall_ms,
            r.items_per_sec,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_every_protocol_family_at_both_sizes() {
        let scenarios = smoke_scenarios();
        assert_eq!(scenarios.len(), 18);
        let labels: std::collections::BTreeSet<_> =
            scenarios.iter().map(|s| s.protocol.label()).collect();
        assert_eq!(labels.len(), 9);
        for n in [20_000u64, 200_000] {
            assert_eq!(scenarios.iter().filter(|s| s.n == n).count(), 9);
        }
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let mk = |ips: f64| SmokeResult {
            scenario: "s".to_owned(),
            words: 1,
            messages: 1,
            wall_ms: 1.0,
            items_per_sec: ips,
        };
        let results = vec![mk(1e6), mk(4e6)];
        let g = geomean_items_per_sec(&results);
        assert!((g - 2e6).abs() < 1e3, "geomean of 1M and 4M is 2M, got {g}");
        assert_eq!(geomean_items_per_sec(&[]), 0.0);
    }

    #[test]
    fn smoke_json_is_valid_enough() {
        let results = vec![SmokeResult {
            scenario: "hh-exact/zipf/round-robin/k4/eps0.1/n20000/seed1".to_owned(),
            words: 1234,
            messages: 567,
            wall_ms: 8.5,
            items_per_sec: 2_352_941.0,
        }];
        let j = smoke_json(&results);
        assert!(j.contains("\"schema\": \"dtrack-bench-smoke/v1\""));
        assert!(j.contains("\"words\": 1234"));
        assert!(j.ends_with("]\n}\n"));
        // Balanced braces/brackets, no trailing comma before the close.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",\n  ]"));
    }
}
