//! Smoke benchmark: fixed scenarios per protocol family, timed end-to-end
//! and emitted as a JSON snapshot.
//!
//! ```text
//! cargo run --release -p dtrack-bench --bin experiments -- smoke
//! ```
//!
//! writes `BENCH_pr10.json` — the current point of the repo's performance
//! trajectory (`BENCH_seed.json` through `BENCH_pr9.json` are the frozen
//! earlier baselines). For the deterministic cells the metered
//! words/messages are bit-for-bit deterministic (regressions there are
//! protocol changes, not noise); wall-clock throughput is indicative.
//!
//! Eight cell groups:
//!
//! * n = 20 000 deterministic cells — match the seed snapshot one-to-one
//!   for before/after comparisons;
//! * n = 200 000 deterministic cells (PR 2) — keep per-item costs visible
//!   as fixed per-run overheads shrink;
//! * n = 200 000 **threaded** cells (PR 3) — the parallel ingest engine,
//!   each protocol measured twice: per-item delivery (one channel hop per
//!   item, the threaded baseline) and batched delivery (whole per-site
//!   runs through `Site::on_items`). Their words are *not* pinned:
//!   free-running ingest interleaves arrivals with in-flight
//!   communication, so the transcript legitimately varies run to run (the
//!   site-at-a-time equivalence tests pin the deterministic schedule
//!   instead). The batched/per-item throughput ratio is the headline
//!   number — it is what batching buys on real threads.
//! * **facade-vs-direct** cells (PR 4) — the same ingest driven once
//!   through the `Tracker` facade and once against the bare
//!   `Cluster`/`ThreadedCluster`, on both backends, per protocol. The
//!   facade's erasure sits at batch/query granularity, so its overhead
//!   must be noise (`facade_overhead_geomean` ≈ 1.00, acceptance ≤ 1.02);
//!   each cell is best-of-2 to keep scheduler noise out of the ratio.
//! * **site-scale** cells (PR 5) — free-running batched ingest at
//!   k ∈ {4, 64, 256} sites on the one-thread-per-site `Threaded`
//!   backend vs the work-stealing `Sharded` pool. At k ≈ cores the two
//!   are comparable; at k ≫ cores the threaded backend drowns in
//!   context switches while the pool keeps its fixed workers busy —
//!   `sharded_scale_speedup_k256` (geomean of sharded/threaded
//!   throughput over the k = 256 pairs) is the acceptance number and
//!   must exceed 1.0.
//! * **flow-control** cells (PR 7) — free-running batched ingest at
//!   k ∈ {64, 256} through the `Tracker` facade, three ways per
//!   (k, protocol) point: a pinned deterministic twin (the words
//!   reference), the pre-PR-7 fixed window
//!   (`FlowControlConfig::fixed`), and the adaptive AIMD controller
//!   with a `cost_hint` installed. Two enforced numbers come out:
//!   `adaptive_vs_fixed_throughput` (geomean of adaptive/fixed
//!   throughput, must be ≥ 1.0 — adaptation must not tax the happy
//!   path) and `free_run_words_factor` (worst metered-words ratio of
//!   any *adaptive* cell over its deterministic twin, must stay ≤ 1.5
//!   — the controller's drift contract, the same factor
//!   `FREE_RUN_HEADROOM` the testkit budgets free runs with; the fixed
//!   baseline is exempt, since it exists to exhibit the unregulated
//!   drift).
//! * **async-scale** cells (PR 9) — free-running batched ingest at
//!   k ∈ {256, 4096} on the work-stealing `Sharded` pool vs the
//!   task-multiplexed `Async` executor (codec off; the wire mode is a
//!   correctness axis, pinned by the equivalence suite, not a perf
//!   cell). `async_vs_sharded_k4096` (geomean of async/sharded
//!   throughput over the k = 4096 pairs) is *recorded*, not enforced:
//!   it prices generic waker machinery against the hand-rolled steal
//!   loop at extreme k — which regime wins is hardware-dependent, and
//!   the async backend's acceptance story is the 77-row equivalence
//!   matrix, not a throughput gate.
//! * **trace-overhead** cells (PR 10) — the deterministic ingest (the
//!   tightest per-item loop, where a hot-path branch would show first)
//!   driven once against the bare `Cluster` exactly as pre-trace callers
//!   ran it, and once through the `Tracker` facade with tracing
//!   *explicitly disabled* (`TraceConfig::off()`), per pair protocol.
//!   The trace layer's contract is that the disabled instrumentation is
//!   one relaxed load and a never-taken branch per event site, so
//!   `trace_overhead_geomean` must be noise (acceptance ≤ 1.02, same
//!   ceiling as the facade gate); each cell is best-of-2. Tracing *on*
//!   is deliberately not a perf cell: its acceptance story is the
//!   transparency suite (answers and metered words byte-identical), not
//!   a throughput number.

use dtrack_core::counter::CounterProtocol;
use dtrack_core::hh::{HhConfig, HhExactProtocol, HhSketchedProtocol};
use dtrack_core::quantile::{QuantileConfig, QuantileSketchedProtocol};
use dtrack_sim::threaded::{RunTicket, ThreadedCluster};
use dtrack_sim::{BackendKind, Cluster, FlowControlConfig, Protocol, SiteId, TraceConfig, Tracker};
use dtrack_testkit::threaded::free_run_len;
use dtrack_testkit::{
    measure_cost, measure_on_backend, measure_threaded, AssignmentSpec, GeneratorSpec,
    ProtocolSpec, Scenario, ThreadedIngest,
};
use std::time::Instant;

/// File name of the smoke snapshot written by `experiments smoke`.
pub const SMOKE_SNAPSHOT: &str = "BENCH_pr10.json";

/// One timed smoke cell.
#[derive(Debug, Clone)]
pub struct SmokeResult {
    /// Replayable scenario name, prefixed with the runtime mode for
    /// threaded cells (`threaded-per-item:` / `threaded-batched:`).
    pub scenario: String,
    /// Metered words (deterministic for deterministic cells; indicative
    /// for threaded cells).
    pub words: u64,
    /// Metered messages (same caveat as `words`).
    pub messages: u64,
    /// Wall-clock time for the whole run.
    pub wall_ms: f64,
    /// Items fed per wall-clock second.
    pub items_per_sec: f64,
}

/// The protocol axis of the deterministic smoke matrix.
const SMOKE_PROTOCOLS: [ProtocolSpec; 9] = [
    ProtocolSpec::Counter,
    ProtocolSpec::HhExact,
    ProtocolSpec::HhSketched,
    ProtocolSpec::QuantileExact { phi: 0.5 },
    ProtocolSpec::QuantileSketched { phi: 0.5 },
    ProtocolSpec::AllQExact,
    ProtocolSpec::Cgmr,
    ProtocolSpec::Polling,
    ProtocolSpec::ForwardAll,
];

/// The protocol axis of the threaded throughput cells. A spread over the
/// interesting site-side behaviors: O(1) quiet-stretch swallowing
/// (counter), exact per-item stores (hh-exact), sketch stores
/// (hh-sketched), and tree-based quantile tracking (quantile-sketched).
const THREADED_PROTOCOLS: [ProtocolSpec; 4] = [
    ProtocolSpec::Counter,
    ProtocolSpec::HhExact,
    ProtocolSpec::HhSketched,
    ProtocolSpec::QuantileSketched { phi: 0.5 },
];

/// Stream length of the threaded throughput cells.
pub const THREADED_N: u64 = 200_000;

fn smoke_scenario(protocol: ProtocolSpec, n: u64) -> Scenario {
    Scenario::new(
        GeneratorSpec::Zipf {
            universe: 1 << 20,
            s: 1.2,
        },
        AssignmentSpec::RoundRobin,
        4,
        0.1,
        n,
        1,
        protocol,
    )
}

/// The deterministic smoke matrix: every protocol family at the
/// seed-comparable size (n = 20k) and at the PR 2 throughput size
/// (n = 200k).
pub fn smoke_scenarios() -> Vec<Scenario> {
    let mut out = Vec::with_capacity(2 * SMOKE_PROTOCOLS.len());
    for n in [20_000u64, 200_000] {
        for protocol in SMOKE_PROTOCOLS {
            out.push(smoke_scenario(protocol, n));
        }
    }
    out
}

/// The threaded throughput cells (PR 3): per-protocol scenarios driven
/// through `ThreadedCluster` free-running, once per ingest mode.
pub fn threaded_scenarios() -> Vec<Scenario> {
    THREADED_PROTOCOLS
        .iter()
        .map(|&p| smoke_scenario(p, THREADED_N))
        .collect()
}

/// Site counts of the PR 5 scale cells: around a typical core count,
/// well past it, and far past it.
pub const SCALE_KS: [u32; 3] = [4, 64, 256];

/// Stream length of the scale cells.
pub const SCALE_N: u64 = 200_000;

/// The protocol axis of the scale cells: the O(1) quiet-stretch counter
/// (channel-hop bound) and the sketch-store heavy hitters (site-compute
/// bound) — the two extremes of per-item site work.
const SCALE_PROTOCOLS: [ProtocolSpec; 2] = [ProtocolSpec::Counter, ProtocolSpec::HhSketched];

/// Scale-cell prefixes per backend: (threaded, sharded). Shared by the
/// cell builder, [`sharded_scale_speedup_k256`]'s pairing, and the
/// structural tests, so a rename cannot silently empty the metric.
const SCALE_PAIR: (&str, &str) = ("scale-threaded:", "scale-sharded:");

fn scale_scenario(protocol: ProtocolSpec, k: u32, n: u64) -> Scenario {
    Scenario::new(
        GeneratorSpec::Zipf {
            universe: 1 << 20,
            s: 1.2,
        },
        AssignmentSpec::RoundRobin,
        k,
        0.1,
        n,
        1,
        protocol,
    )
}

/// The site-scale cells: free-running batched ingest at every k in
/// [`SCALE_KS`], on the one-thread-per-site threaded backend and on the
/// work-stealing sharded pool (machine-default worker count). Best-of-2
/// like the facade/direct pairs: `sharded_scale_speedup_k256` is an
/// *enforced* ratio, so one unlucky scheduling in either twin must not
/// decide it. `n` is [`SCALE_N`] in the real run; tests pass a small n
/// to exercise the actual cell builder cheaply.
fn scale_cells_at(n: u64) -> Vec<SmokeResult> {
    let mut out = Vec::new();
    for &k in &SCALE_KS {
        for protocol in SCALE_PROTOCOLS {
            let scenario = scale_scenario(protocol, k, n);
            for (prefix, backend) in [
                (SCALE_PAIR.0, BackendKind::Threaded),
                (SCALE_PAIR.1, BackendKind::Sharded { workers: None }),
            ] {
                out.push(timed_cell(format!("{prefix}{scenario}"), n, || {
                    let outcome = measure_on_backend(&scenario, ThreadedIngest::Batched, backend)
                        .expect("scale cell failed");
                    (
                        outcome.report.words,
                        outcome.report.messages,
                        outcome.ingest_ms,
                    )
                }));
            }
        }
    }
    out
}

/// Geometric-mean throughput ratio of the `scale-sharded:` cells over
/// their `scale-threaded:` twins at k = 256 (1.0 when no pairs are
/// present). This is the acceptance number for the work-stealing pool:
/// when sites vastly outnumber cores, multiplexing must beat
/// one-thread-per-site.
pub fn sharded_scale_speedup_k256(results: &[SmokeResult]) -> f64 {
    let threaded_of = |suffix: &str| {
        results
            .iter()
            .find(|r| r.scenario.strip_prefix(SCALE_PAIR.0) == Some(suffix))
            .map(|r| r.items_per_sec)
    };
    let mut log_sum = 0.0;
    let mut pairs = 0usize;
    for r in results {
        if let Some(name) = r.scenario.strip_prefix(SCALE_PAIR.1) {
            if !name.contains("/k256/") {
                continue;
            }
            if let Some(base) = threaded_of(name) {
                log_sum += (r.items_per_sec.max(1.0) / base.max(1.0)).ln();
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        1.0
    } else {
        (log_sum / pairs as f64).exp()
    }
}

/// Site counts of the PR 9 async cells: past the core count (where the
/// sharded pool already won its PR 5 gate) and far past any
/// thread-per-site design — 4096 cooperative tasks on a fixed pool.
pub const ASYNC_KS: [u32; 2] = [256, 4096];

/// The protocol axis of the async cells — the same two extremes of
/// per-item site work as [`SCALE_PROTOCOLS`].
const ASYNC_PROTOCOLS: [ProtocolSpec; 2] = [ProtocolSpec::Counter, ProtocolSpec::HhSketched];

/// Async-cell prefixes per backend: (sharded baseline, async executor).
/// Shared by the cell builder, [`async_vs_sharded_k4096`]'s pairing, and
/// the structural tests, so a rename cannot silently empty the metric.
const ASYNC_PAIR: (&str, &str) = ("async-scale-sharded:", "async-scale:");

/// The async-scale cells: free-running batched ingest at every k in
/// [`ASYNC_KS`] on the work-stealing sharded pool (the PR 5 incumbent at
/// extreme k) and on the async executor (machine-default worker count
/// for both, codec off). Best-of-2 like the other paired cells so one
/// unlucky scheduling cannot decide the recorded ratio.
fn async_cells_at(n: u64) -> Vec<SmokeResult> {
    let mut out = Vec::new();
    for &k in &ASYNC_KS {
        for protocol in ASYNC_PROTOCOLS {
            let scenario = scale_scenario(protocol, k, n);
            for (prefix, backend) in [
                (ASYNC_PAIR.0, BackendKind::Sharded { workers: None }),
                (
                    ASYNC_PAIR.1,
                    BackendKind::Async {
                        workers: None,
                        wire: false,
                    },
                ),
            ] {
                out.push(timed_cell(format!("{prefix}{scenario}"), n, || {
                    let outcome = measure_on_backend(&scenario, ThreadedIngest::Batched, backend)
                        .expect("async-scale cell failed");
                    (
                        outcome.report.words,
                        outcome.report.messages,
                        outcome.ingest_ms,
                    )
                }));
            }
        }
    }
    out
}

/// Geometric-mean throughput ratio of the `async-scale:` cells over
/// their `async-scale-sharded:` twins at k = 4096 (1.0 when no pairs
/// are present). Recorded in the snapshot, not enforced: it prices task
/// multiplexing against work-stealing threads when sites outnumber
/// cores by three orders of magnitude on this hardware.
pub fn async_vs_sharded_k4096(results: &[SmokeResult]) -> f64 {
    let sharded_of = |suffix: &str| {
        results
            .iter()
            .find(|r| r.scenario.strip_prefix(ASYNC_PAIR.0) == Some(suffix))
            .map(|r| r.items_per_sec)
    };
    let mut log_sum = 0.0;
    let mut pairs = 0usize;
    for r in results {
        if let Some(name) = r.scenario.strip_prefix(ASYNC_PAIR.1) {
            if !name.contains("/k4096/") {
                continue;
            }
            if let Some(base) = sharded_of(name) {
                log_sum += (r.items_per_sec.max(1.0) / base.max(1.0)).ln();
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        1.0
    } else {
        (log_sum / pairs as f64).exp()
    }
}

/// Site counts of the PR 7 flow-control cells: the same past-the-cores
/// points the scale cells stress, where backpressure actually bites.
pub const FREE_KS: [u32; 2] = [64, 256];

/// The protocol axis of the flow-control cells — the same two extremes
/// of per-item site work as [`SCALE_PROTOCOLS`].
const FREE_PROTOCOLS: [ProtocolSpec; 2] = [ProtocolSpec::Counter, ProtocolSpec::HhSketched];

/// Flow-control cell prefixes: (deterministic twin, fixed window,
/// adaptive AIMD). Shared by the cell builder, both metric extractors,
/// and the structural tests, so a rename cannot silently empty them.
const FREE_TRIPLE: (&str, &str, &str) = ("free-det:", "free-fixed:", "free-adaptive:");

/// The drift ceiling enforced on every free-running cell — kept equal to
/// the testkit's [`dtrack_testkit::bound::FREE_RUN_HEADROOM`] budget
/// factor by the structural tests.
pub const FREE_WORDS_CEILING: f64 = dtrack_testkit::bound::FREE_RUN_HEADROOM;

/// Build the three flow-control cells for one (protocol, k) point: the
/// deterministic twin (pinned words, the drift reference), free-running
/// ingest behind the *fixed* pre-PR-7 window, and free-running ingest
/// behind the adaptive AIMD controller with the protocol's reference
/// rate installed via `cost_hint`.
fn push_free_cells<P: Protocol>(
    out: &mut Vec<SmokeResult>,
    p: &P,
    spec: ProtocolSpec,
    k: u32,
    n: u64,
) {
    let scenario = scale_scenario(spec, k, n);
    let stream: Vec<(SiteId, u64)> = scenario.stream().collect();
    let run_len = free_run_len(k);
    out.push(timed_cell(
        format!("{}{scenario}", FREE_TRIPLE.0),
        n,
        || {
            let mut tracker = Tracker::builder()
                .sites(k)
                .backend(BackendKind::Deterministic)
                .protocol(p.clone())
                .build()
                .expect("tracker");
            let start = Instant::now();
            for part in stream.chunks(PAIR_CHUNK) {
                tracker.feed_batch(part).expect("feed_batch");
            }
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let meter = tracker.cost();
            (meter.total_words(), meter.total_messages(), wall_ms)
        },
    ));
    let fixed = FlowControlConfig::fixed(run_len as u32);
    // Tuned for the k ≫ cores cells: a 64-item floor keeps backoffs from
    // collapsing into the fixed baseline's tiny-run regime (per-run
    // enqueue overhead dominates below ~64 items/run at k = 256), and the
    // 1024 cap bounds how far one site's burst can run ahead of feedback.
    let adaptive = FlowControlConfig {
        win_min: 64,
        win_max: 1024,
        initial: (run_len as u32).max(128),
        increase: 32,
        ..FlowControlConfig::default()
    };
    // The reference words-per-item rate the controller holds free runs
    // to: the deterministic twin's *actual* rate — the golden transcript
    // this snapshot's words factor is judged against. (The testkit
    // drivers, which have no pinned twin at hand, install the scenario's
    // word *budget* rate instead — a looser bound for the same signal.)
    let det_words = out.last().expect("det twin just pushed").words;
    let ref_rate = det_words.max(1) as f64 / n.max(1) as f64;
    for (prefix, flow) in [(FREE_TRIPLE.1, fixed), (FREE_TRIPLE.2, adaptive)] {
        let hinted = prefix == FREE_TRIPLE.2;
        out.push(timed_cell(format!("{prefix}{scenario}"), n, || {
            let mut tracker = Tracker::builder()
                .sites(k)
                .backend(BackendKind::Sharded { workers: None })
                .flow_control(flow)
                .protocol(p.clone())
                .build()
                .expect("tracker");
            if hinted {
                tracker.cost_hint(ref_rate);
            }
            let mut per_site: Vec<Vec<u64>> = vec![Vec::new(); k as usize];
            let start = Instant::now();
            for part in stream.chunks(run_len * k as usize) {
                for &(site, item) in part {
                    per_site[site.index()].push(item);
                }
                for (i, items) in per_site.iter_mut().enumerate() {
                    if !items.is_empty() {
                        tracker
                            .ingest(SiteId(i as u32), std::mem::take(items))
                            .expect("ingest");
                    }
                }
            }
            tracker.settle();
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            if hinted && std::env::var_os("DTRACK_FLOW_DEBUG").is_some() {
                if let Ok(dtrack_sim::Answer::FlowControl(stats)) =
                    tracker.query(dtrack_sim::Query::FlowControl)
                {
                    eprintln!("    [{scenario} k={k}] {stats}");
                }
                for (kind, cost) in tracker.cost().report().by_kind {
                    eprintln!("      {kind}: {} msgs {} words", cost.messages, cost.words);
                }
            }
            let meter = tracker.cost();
            (meter.total_words(), meter.total_messages(), wall_ms)
        }));
    }
}

/// The flow-control cells: [`FREE_PROTOCOLS`] × [`FREE_KS`], three cells
/// per point. `n` is [`SCALE_N`] in the real run; tests pass a small n
/// to exercise the actual cell builder cheaply.
fn free_flow_cells_at(n: u64) -> Vec<SmokeResult> {
    let mut out = Vec::new();
    for &k in &FREE_KS {
        let s = scale_scenario(ProtocolSpec::Counter, k, n);
        push_free_cells(
            &mut out,
            &CounterProtocol::new(s.epsilon).expect("epsilon"),
            ProtocolSpec::Counter,
            k,
            n,
        );
        let config = HhConfig::new(k, s.epsilon).expect("config");
        push_free_cells(
            &mut out,
            &HhSketchedProtocol::new(config),
            ProtocolSpec::HhSketched,
            k,
            n,
        );
    }
    // The hardcoded blocks above cannot iterate FREE_PROTOCOLS (each
    // adapter is a different type), so pin the coverage instead.
    for spec in FREE_PROTOCOLS {
        let label = spec.label();
        assert!(
            out.iter()
                .any(|c| c.scenario.contains(&format!(":{label}/"))),
            "flow-control cells missing for {label}"
        );
    }
    out
}

/// Geometric-mean throughput ratio of the `free-adaptive:` cells over
/// their `free-fixed:` twins (1.0 when no pairs are present). This is
/// the flow controller's no-regression acceptance number: on a healthy
/// cluster the AIMD window must ingest at least as fast as the old
/// fixed window.
pub fn adaptive_vs_fixed_throughput(results: &[SmokeResult]) -> f64 {
    let fixed_of = |suffix: &str| {
        results
            .iter()
            .find(|r| r.scenario.strip_prefix(FREE_TRIPLE.1) == Some(suffix))
            .map(|r| r.items_per_sec)
    };
    let mut log_sum = 0.0;
    let mut pairs = 0usize;
    for r in results {
        if let Some(name) = r.scenario.strip_prefix(FREE_TRIPLE.2) {
            if let Some(base) = fixed_of(name) {
                log_sum += (r.items_per_sec.max(1.0) / base.max(1.0)).ln();
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        1.0
    } else {
        (log_sum / pairs as f64).exp()
    }
}

/// Worst metered-words ratio of any `free-adaptive:` cell over its
/// pinned `free-det:` twin (1.0 when no cells are present). Free-running
/// ingest legitimately spends more words than the pinned schedule —
/// sites act on slightly stale thresholds — and the controller's
/// contract caps that drift at [`FREE_WORDS_CEILING`]. The `free-fixed:`
/// baseline cells are deliberately exempt: they exist to *exhibit* the
/// unregulated drift the controller eliminates (they routinely sit 4×
/// and worse over the pinned transcript), so gating them would just
/// forbid the comparison.
pub fn free_run_words_factor(results: &[SmokeResult]) -> f64 {
    let det_of = |suffix: &str| {
        results
            .iter()
            .find(|r| r.scenario.strip_prefix(FREE_TRIPLE.0) == Some(suffix))
            .map(|r| r.words)
    };
    let mut worst = 1.0f64;
    for r in results {
        if let Some(name) = r.scenario.strip_prefix(FREE_TRIPLE.2) {
            if let Some(det) = det_of(name) {
                worst = worst.max(r.words as f64 / det.max(1) as f64);
            }
        }
    }
    worst
}

fn mode_label(ingest: ThreadedIngest) -> &'static str {
    match ingest {
        ThreadedIngest::PerItem => "threaded-per-item",
        ThreadedIngest::Batched => "threaded-batched",
    }
}

/// Facade/direct cell-name prefixes per backend: (facade, direct).
/// Shared by the cell builders, [`facade_overhead_geomean`]'s pairing,
/// and the structural tests, so a rename cannot silently empty the
/// overhead metric.
const DET_PAIR: (&str, &str) = ("facade-det:", "direct-det:");
/// Threaded twin of [`DET_PAIR`].
const THR_PAIR: (&str, &str) = ("facade-thr:", "direct-thr:");

/// Trace-overhead cell-name prefixes: (traced-off facade, pre-trace
/// bare-cluster baseline). Shared by the cell builder,
/// [`trace_overhead_geomean`]'s pairing, and the structural tests, so a
/// rename cannot silently empty the overhead metric.
const TRACE_PAIR: (&str, &str) = ("traced-off:", "trace-base:");

/// Items per deterministic `feed_batch` call in the facade/direct cells
/// — the testkit's chunking, so the pair cells mirror the drivers.
const PAIR_CHUNK: usize = dtrack_testkit::runner::FEED_CHUNK as usize;

/// Target per-site run length for the free-running threaded pair cells
/// — the testkit's, so the pairs mirror the headline threaded cells.
const PAIR_FREE_RUN: usize = dtrack_testkit::threaded::FREE_RUN;

/// Build one timed cell from a closure that ingests the stream and
/// returns (words, messages). Best-of-2: construction state is rebuilt
/// for each attempt, only the faster ingest wall-clock is kept, so the
/// facade/direct *ratio* is not dominated by one unlucky scheduling.
fn timed_cell(name: String, n: u64, mut run_once: impl FnMut() -> (u64, u64, f64)) -> SmokeResult {
    let (mut words, mut messages, mut wall_ms) = run_once();
    let (w2, m2, t2) = run_once();
    if t2 < wall_ms {
        (words, messages, wall_ms) = (w2, m2, t2);
    }
    SmokeResult {
        scenario: name,
        words,
        messages,
        wall_ms,
        items_per_sec: n as f64 / (wall_ms / 1e3).max(1e-9),
    }
}

/// Deterministic ingest against the bare [`Cluster`] — no facade. Used
/// with [`DET_PAIR`]'s direct prefix and, under [`TRACE_PAIR`]'s
/// baseline prefix, as the pre-trace hot path the trace-overhead gate
/// compares against.
fn bare_deterministic<P: Protocol>(prefix: &str, p: &P, scenario: &Scenario) -> SmokeResult {
    let stream: Vec<(SiteId, u64)> = scenario.stream().collect();
    timed_cell(format!("{prefix}{scenario}"), scenario.n, || {
        let (sites, coordinator) = p.build(scenario.k).expect("protocol build");
        let mut cluster = Cluster::new(sites, coordinator).expect("cluster");
        let start = Instant::now();
        for part in stream.chunks(PAIR_CHUNK) {
            cluster.feed_batch(part).expect("feed_batch");
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let meter = cluster.meter();
        (meter.total_words(), meter.total_messages(), wall_ms)
    })
}

fn direct_deterministic<P: Protocol>(p: &P, scenario: &Scenario) -> SmokeResult {
    bare_deterministic(DET_PAIR.1, p, scenario)
}

/// The same deterministic ingest through the [`Tracker`] facade.
fn facade_deterministic<P: Protocol>(p: &P, scenario: &Scenario) -> SmokeResult {
    let stream: Vec<(SiteId, u64)> = scenario.stream().collect();
    timed_cell(format!("{}{scenario}", DET_PAIR.0), scenario.n, || {
        let mut tracker = Tracker::builder()
            .sites(scenario.k)
            .backend(BackendKind::Deterministic)
            .protocol(p.clone())
            .build()
            .expect("tracker");
        let start = Instant::now();
        for part in stream.chunks(PAIR_CHUNK) {
            tracker.feed_batch(part).expect("feed_batch");
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let meter = tracker.cost();
        (meter.total_words(), meter.total_messages(), wall_ms)
    })
}

/// Free-running batched ingest against the bare [`ThreadedCluster`] —
/// the one-run-per-site ticket window hand-rolled, as pre-facade callers
/// had to.
fn direct_threaded<P: Protocol>(p: &P, scenario: &Scenario) -> SmokeResult {
    let stream: Vec<(SiteId, u64)> = scenario.stream().collect();
    let k = scenario.k as usize;
    timed_cell(format!("{}{scenario}", THR_PAIR.1), scenario.n, || {
        let (sites, coordinator) = p.build(scenario.k).expect("protocol build");
        let cluster = ThreadedCluster::spawn(sites, coordinator).expect("spawn");
        let mut per_site: Vec<Vec<u64>> = vec![Vec::new(); k];
        let mut tickets: Vec<Option<RunTicket>> = (0..k).map(|_| None).collect();
        let start = Instant::now();
        for part in stream.chunks(PAIR_FREE_RUN * k) {
            for &(site, item) in part {
                per_site[site.index()].push(item);
            }
            for (i, items) in per_site.iter_mut().enumerate() {
                if !items.is_empty() {
                    if let Some(t) = tickets[i].take() {
                        t.wait().expect("run consumed");
                    }
                    tickets[i] = Some(
                        cluster
                            .ingest_run(SiteId(i as u32), std::mem::take(items))
                            .expect("ingest_run"),
                    );
                }
            }
        }
        for t in tickets.into_iter().flatten() {
            t.wait().expect("run consumed");
        }
        cluster.settle();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let meter = cluster.cost();
        let out = (meter.total_words(), meter.total_messages(), wall_ms);
        cluster.shutdown().expect("shutdown");
        out
    })
}

/// The same free-running batched ingest through the [`Tracker`] facade
/// (the ticket window lives inside the threaded backend).
fn facade_threaded<P: Protocol>(p: &P, scenario: &Scenario) -> SmokeResult {
    let stream: Vec<(SiteId, u64)> = scenario.stream().collect();
    let k = scenario.k as usize;
    timed_cell(format!("{}{scenario}", THR_PAIR.0), scenario.n, || {
        let mut tracker = Tracker::builder()
            .sites(scenario.k)
            .backend(BackendKind::Threaded)
            .protocol(p.clone())
            .build()
            .expect("tracker");
        let mut per_site: Vec<Vec<u64>> = vec![Vec::new(); k];
        let start = Instant::now();
        for part in stream.chunks(PAIR_FREE_RUN * k) {
            for &(site, item) in part {
                per_site[site.index()].push(item);
            }
            for (i, items) in per_site.iter_mut().enumerate() {
                if !items.is_empty() {
                    tracker
                        .ingest(SiteId(i as u32), std::mem::take(items))
                        .expect("ingest");
                }
            }
        }
        tracker.settle();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let meter = tracker.cost();
        (meter.total_words(), meter.total_messages(), wall_ms)
    })
}

fn push_pair_cells<P: Protocol>(out: &mut Vec<SmokeResult>, p: &P, scenario: &Scenario) {
    out.push(direct_deterministic(p, scenario));
    out.push(facade_deterministic(p, scenario));
    out.push(direct_threaded(p, scenario));
    out.push(facade_threaded(p, scenario));
}

/// The facade-vs-direct cells: the [`THREADED_PROTOCOLS`] spread, each
/// measured through the facade and against the bare clusters, on both
/// backends. `n` is [`THREADED_N`] in the real run; tests pass a small
/// n to exercise the actual cell builder cheaply.
fn facade_direct_cells_at(n: u64) -> Vec<SmokeResult> {
    let mut out = Vec::new();
    let s = smoke_scenario(ProtocolSpec::Counter, n);
    push_pair_cells(
        &mut out,
        &CounterProtocol::new(s.epsilon).expect("epsilon"),
        &s,
    );
    let s = smoke_scenario(ProtocolSpec::HhExact, n);
    let config = HhConfig::new(s.k, s.epsilon).expect("config");
    push_pair_cells(&mut out, &HhExactProtocol::new(config), &s);
    let s = smoke_scenario(ProtocolSpec::HhSketched, n);
    let config = HhConfig::new(s.k, s.epsilon).expect("config");
    push_pair_cells(&mut out, &HhSketchedProtocol::new(config), &s);
    let s = smoke_scenario(ProtocolSpec::QuantileSketched { phi: 0.5 }, n);
    let config = QuantileConfig::new(s.k, s.epsilon, 0.5).expect("config");
    push_pair_cells(&mut out, &QuantileSketchedProtocol::new(config), &s);
    // The hardcoded blocks above cannot iterate THREADED_PROTOCOLS (each
    // adapter is a different type), so pin the coverage instead: every
    // protocol in the headline threaded spread must have pair cells.
    for spec in THREADED_PROTOCOLS {
        let label = spec.label();
        assert!(
            out.iter()
                .any(|c| c.scenario.contains(&format!(":{label}/"))),
            "facade/direct pair cells missing for {label}"
        );
    }
    out
}

/// Deterministic ingest through the [`Tracker`] facade with tracing
/// *explicitly disabled* — the post-PR-10 hot path the trace-overhead
/// gate prices. `set_trace(TraceConfig::off())` exercises the full
/// install path (the per-site tracer handles are really distributed),
/// so the cell measures the disabled instrumentation, not its absence.
fn traced_off_deterministic<P: Protocol>(p: &P, scenario: &Scenario) -> SmokeResult {
    let stream: Vec<(SiteId, u64)> = scenario.stream().collect();
    timed_cell(format!("{}{scenario}", TRACE_PAIR.0), scenario.n, || {
        let mut tracker = Tracker::builder()
            .sites(scenario.k)
            .backend(BackendKind::Deterministic)
            .protocol(p.clone())
            .build()
            .expect("tracker");
        tracker.set_trace(TraceConfig::off());
        let start = Instant::now();
        for part in stream.chunks(PAIR_CHUNK) {
            tracker.feed_batch(part).expect("feed_batch");
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let meter = tracker.cost();
        (meter.total_words(), meter.total_messages(), wall_ms)
    })
}

fn push_trace_cells<P: Protocol>(out: &mut Vec<SmokeResult>, p: &P, scenario: &Scenario) {
    out.push(bare_deterministic(TRACE_PAIR.1, p, scenario));
    out.push(traced_off_deterministic(p, scenario));
}

/// The trace-overhead cells: the [`THREADED_PROTOCOLS`] spread through
/// the deterministic backend, once bare (the pre-trace hot path) and
/// once through the facade with tracing explicitly off. `n` is
/// [`THREADED_N`] in the real run; tests pass a small n to exercise the
/// actual cell builder cheaply.
fn trace_cells_at(n: u64) -> Vec<SmokeResult> {
    let mut out = Vec::new();
    let s = smoke_scenario(ProtocolSpec::Counter, n);
    push_trace_cells(
        &mut out,
        &CounterProtocol::new(s.epsilon).expect("epsilon"),
        &s,
    );
    let s = smoke_scenario(ProtocolSpec::HhExact, n);
    let config = HhConfig::new(s.k, s.epsilon).expect("config");
    push_trace_cells(&mut out, &HhExactProtocol::new(config), &s);
    let s = smoke_scenario(ProtocolSpec::HhSketched, n);
    let config = HhConfig::new(s.k, s.epsilon).expect("config");
    push_trace_cells(&mut out, &HhSketchedProtocol::new(config), &s);
    let s = smoke_scenario(ProtocolSpec::QuantileSketched { phi: 0.5 }, n);
    let config = QuantileConfig::new(s.k, s.epsilon, 0.5).expect("config");
    push_trace_cells(&mut out, &QuantileSketchedProtocol::new(config), &s);
    // Pin the coverage the same way the facade/direct builder does:
    // every pair protocol must have trace cells.
    for spec in THREADED_PROTOCOLS {
        let label = spec.label();
        assert!(
            out.iter()
                .any(|c| c.scenario.contains(&format!(":{label}/"))),
            "trace-overhead pair cells missing for {label}"
        );
    }
    out
}

/// Run the smoke matrix (deterministic + threaded cells), timing each
/// scenario.
///
/// Workload tables (the 2^20-entry Zipf CDF) are process-wide immutable
/// assets shared by every cell, so they are built once in an untimed
/// prewarm pass; the timed cells then measure ingest throughput, not
/// table construction. (The seed snapshot predates the shared cache and
/// paid the build inside every cell.)
pub fn run_smoke() -> Vec<SmokeResult> {
    let scenarios = smoke_scenarios();
    for scenario in &scenarios {
        // Building the stream forces the generator's tables into the
        // process-wide cache; dropping it immediately keeps this O(1).
        let _ = scenario.stream();
    }
    let mut results: Vec<SmokeResult> = scenarios
        .iter()
        .map(|scenario| {
            let start = Instant::now();
            let report = measure_cost(scenario).expect("smoke scenario failed");
            let wall = start.elapsed();
            SmokeResult {
                scenario: report.scenario,
                words: report.words,
                messages: report.messages,
                wall_ms: wall.as_secs_f64() * 1e3,
                items_per_sec: scenario.n as f64 / wall.as_secs_f64().max(1e-9),
            }
        })
        .collect();
    for scenario in threaded_scenarios() {
        for ingest in [ThreadedIngest::PerItem, ThreadedIngest::Batched] {
            // Threaded cells time ingest only (stream generation, spawn,
            // and teardown excluded — `ThreadedOutcome::ingest_ms`), so
            // the batched/per-item ratio measures the delivery path, not
            // shared setup costs.
            let outcome =
                measure_threaded(&scenario, ingest).expect("threaded smoke scenario failed");
            results.push(SmokeResult {
                scenario: format!("{}:{}", mode_label(ingest), outcome.report.scenario),
                words: outcome.report.words,
                messages: outcome.report.messages,
                wall_ms: outcome.ingest_ms,
                items_per_sec: scenario.n as f64 / (outcome.ingest_ms / 1e3).max(1e-9),
            });
        }
    }
    results.extend(facade_direct_cells_at(THREADED_N));
    results.extend(scale_cells_at(SCALE_N));
    results.extend(free_flow_cells_at(SCALE_N));
    results.extend(async_cells_at(SCALE_N));
    results.extend(trace_cells_at(THREADED_N));
    results
}

/// Geometric mean of `items_per_sec` over `results` (0.0 when empty).
pub fn geomean_items_per_sec(results: &[SmokeResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = results.iter().map(|r| r.items_per_sec.max(1.0).ln()).sum();
    (log_sum / results.len() as f64).exp()
}

/// Geometric-mean speedup of the `threaded-batched:` cells over their
/// `threaded-per-item:` twins (1.0 when no pairs are present). This is
/// the acceptance number for batched parallel ingest.
pub fn threaded_batched_speedup(results: &[SmokeResult]) -> f64 {
    let rate_of = |prefix: &str, suffix: &str| {
        results
            .iter()
            .find(|r| r.scenario.strip_prefix(prefix) == Some(suffix))
            .map(|r| r.items_per_sec)
    };
    let mut log_sum = 0.0;
    let mut pairs = 0usize;
    for r in results {
        if let Some(name) = r.scenario.strip_prefix("threaded-batched:") {
            if let Some(base) = rate_of("threaded-per-item:", name) {
                log_sum += (r.items_per_sec.max(1.0) / base.max(1.0)).ln();
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        1.0
    } else {
        (log_sum / pairs as f64).exp()
    }
}

/// Geometric-mean wall-clock ratio of the `facade-…:` cells over their
/// `direct-…:` twins (1.0 when no pairs are present). 1.00 means the
/// facade costs nothing; the acceptance ceiling is 1.02 (≤ 2% overhead).
pub fn facade_overhead_geomean(results: &[SmokeResult]) -> f64 {
    let direct_of = |prefix: &str, suffix: &str| {
        results
            .iter()
            .find(|r| r.scenario.strip_prefix(prefix) == Some(suffix))
            .map(|r| r.wall_ms)
    };
    let mut log_sum = 0.0;
    let mut pairs = 0usize;
    for r in results {
        for (facade, direct) in [
            ("facade-det:", "direct-det:"),
            ("facade-thr:", "direct-thr:"),
        ] {
            if let Some(name) = r.scenario.strip_prefix(facade) {
                if let Some(base) = direct_of(direct, name) {
                    log_sum += (r.wall_ms.max(1e-6) / base.max(1e-6)).ln();
                    pairs += 1;
                }
            }
        }
    }
    if pairs == 0 {
        1.0
    } else {
        (log_sum / pairs as f64).exp()
    }
}

/// Geometric-mean wall-clock ratio of the `traced-off:` cells over
/// their `trace-base:` twins (1.0 when no pairs are present). 1.00
/// means the disabled trace instrumentation costs nothing over the
/// pre-trace hot path; the acceptance ceiling is 1.02 (≤ 2% overhead),
/// the same ceiling the facade gate uses.
pub fn trace_overhead_geomean(results: &[SmokeResult]) -> f64 {
    let base_of = |suffix: &str| {
        results
            .iter()
            .find(|r| r.scenario.strip_prefix(TRACE_PAIR.1) == Some(suffix))
            .map(|r| r.wall_ms)
    };
    let mut log_sum = 0.0;
    let mut pairs = 0usize;
    for r in results {
        if let Some(name) = r.scenario.strip_prefix(TRACE_PAIR.0) {
            if let Some(base) = base_of(name) {
                log_sum += (r.wall_ms.max(1e-6) / base.max(1e-6)).ln();
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        1.0
    } else {
        (log_sum / pairs as f64).exp()
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render smoke results as a stable, human-diffable JSON document.
pub fn smoke_json(results: &[SmokeResult]) -> String {
    let mut out = String::from("{\n  \"schema\": \"dtrack-bench-smoke/v7\",\n");
    out.push_str(&format!(
        "  \"threaded_batched_speedup\": {:.2},\n  \"facade_overhead_geomean\": {:.3},\n  \"sharded_scale_speedup_k256\": {:.2},\n  \"adaptive_vs_fixed_throughput\": {:.2},\n  \"free_run_words_factor\": {:.3},\n  \"async_vs_sharded_k4096\": {:.2},\n  \"trace_overhead_geomean\": {:.3},\n  \"cells\": [\n",
        threaded_batched_speedup(results),
        facade_overhead_geomean(results),
        sharded_scale_speedup_k256(results),
        adaptive_vs_fixed_throughput(results),
        free_run_words_factor(results),
        async_vs_sharded_k4096(results),
        trace_overhead_geomean(results)
    ));
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"words\": {}, \"messages\": {}, \
             \"wall_ms\": {:.3}, \"items_per_sec\": {:.0}}}{}\n",
            json_escape(&r.scenario),
            r.words,
            r.messages,
            r.wall_ms,
            r.items_per_sec,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_every_protocol_family_at_both_sizes() {
        let scenarios = smoke_scenarios();
        assert_eq!(scenarios.len(), 18);
        let labels: std::collections::BTreeSet<_> =
            scenarios.iter().map(|s| s.protocol.label()).collect();
        assert_eq!(labels.len(), 9);
        for n in [20_000u64, 200_000] {
            assert_eq!(scenarios.iter().filter(|s| s.n == n).count(), 9);
        }
    }

    #[test]
    fn threaded_cells_cover_the_parallel_axis() {
        let scenarios = threaded_scenarios();
        assert_eq!(scenarios.len(), 4);
        assert!(scenarios.iter().all(|s| s.n == THREADED_N));
        let labels: std::collections::BTreeSet<_> =
            scenarios.iter().map(|s| s.protocol.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let mk = |ips: f64| SmokeResult {
            scenario: "s".to_owned(),
            words: 1,
            messages: 1,
            wall_ms: 1.0,
            items_per_sec: ips,
        };
        let results = vec![mk(1e6), mk(4e6)];
        let g = geomean_items_per_sec(&results);
        assert!((g - 2e6).abs() < 1e3, "geomean of 1M and 4M is 2M, got {g}");
        assert_eq!(geomean_items_per_sec(&[]), 0.0);
    }

    #[test]
    fn speedup_pairs_batched_with_per_item_cells() {
        let mk = |name: &str, ips: f64| SmokeResult {
            scenario: name.to_owned(),
            words: 1,
            messages: 1,
            wall_ms: 1.0,
            items_per_sec: ips,
        };
        let results = vec![
            mk("threaded-per-item:counter/x", 1e6),
            mk("threaded-batched:counter/x", 3e6),
            mk("threaded-per-item:hh-exact/y", 2e6),
            mk("threaded-batched:hh-exact/y", 8e6),
            mk("counter/unrelated-deterministic", 5e6),
        ];
        // geomean(3, 4) = sqrt(12)
        let s = threaded_batched_speedup(&results);
        assert!((s - 12f64.sqrt()).abs() < 1e-9, "got {s}");
        assert_eq!(threaded_batched_speedup(&[]), 1.0);
    }

    #[test]
    fn facade_overhead_pairs_facade_with_direct_cells() {
        let mk = |name: &str, wall_ms: f64| SmokeResult {
            scenario: name.to_owned(),
            words: 1,
            messages: 1,
            wall_ms,
            items_per_sec: 1.0,
        };
        let results = vec![
            mk("direct-det:counter/x", 10.0),
            mk("facade-det:counter/x", 11.0),
            mk("direct-thr:counter/x", 20.0),
            mk("facade-thr:counter/x", 19.0),
            mk("threaded-per-item:counter/x", 5.0),
        ];
        // geomean(1.1, 0.95) = sqrt(1.045)
        let o = facade_overhead_geomean(&results);
        assert!((o - (1.1f64 * 0.95).sqrt()).abs() < 1e-9, "got {o}");
        assert_eq!(facade_overhead_geomean(&[]), 1.0);
    }

    #[test]
    fn facade_direct_cells_pair_up_and_feed_the_overhead_metric() {
        // Run the *real* cell builder at a small n so the test exercises
        // exactly what `experiments smoke` ships: a facade and a direct
        // cell per backend for every pair protocol, each pair visible to
        // the overhead extractor (so a renamed prefix or a dropped
        // protocol block can't silently turn the metric into its
        // no-pairs default of 1.0).
        let cells = facade_direct_cells_at(4_000);
        assert_eq!(cells.len(), 4 * THREADED_PROTOCOLS.len());
        for prefix in [DET_PAIR.0, DET_PAIR.1, THR_PAIR.0, THR_PAIR.1] {
            assert_eq!(
                cells
                    .iter()
                    .filter(|c| c.scenario.starts_with(prefix))
                    .count(),
                THREADED_PROTOCOLS.len(),
                "{prefix} cells missing"
            );
        }
        // Every facade cell found its direct twin: perturbing one pair's
        // facade wall-clock must move the geomean.
        let base = facade_overhead_geomean(&cells);
        assert!(base > 0.0);
        let mut perturbed = cells.clone();
        let f = perturbed
            .iter_mut()
            .find(|c| c.scenario.starts_with(DET_PAIR.0))
            .expect("facade cell");
        f.wall_ms *= 10.0;
        assert!(facade_overhead_geomean(&perturbed) > base);
        // Deterministic facade/direct twins meter identical words — the
        // facade adds no communication.
        for c in &cells {
            if let Some(name) = c.scenario.strip_prefix(DET_PAIR.0) {
                let twin = cells
                    .iter()
                    .find(|d| d.scenario.strip_prefix(DET_PAIR.1) == Some(name))
                    .expect("direct twin");
                assert_eq!(c.words, twin.words, "facade changed the transcript");
            }
        }
    }

    #[test]
    fn trace_overhead_pairs_traced_off_with_base_cells() {
        let mk = |name: &str, wall_ms: f64| SmokeResult {
            scenario: name.to_owned(),
            words: 1,
            messages: 1,
            wall_ms,
            items_per_sec: 1.0,
        };
        let results = vec![
            mk("trace-base:counter/x", 10.0),
            mk("traced-off:counter/x", 10.2),
            mk("trace-base:hh-exact/y", 20.0),
            mk("traced-off:hh-exact/y", 19.0),
            mk("facade-det:counter/x", 5.0),
        ];
        // geomean(1.02, 0.95) = sqrt(0.969)
        let o = trace_overhead_geomean(&results);
        assert!((o - (1.02f64 * 0.95).sqrt()).abs() < 1e-9, "got {o}");
        assert_eq!(trace_overhead_geomean(&[]), 1.0);
    }

    #[test]
    fn trace_cells_pair_up_and_feed_the_overhead_metric() {
        // Run the *real* cell builder at a small n so the test exercises
        // exactly what `experiments smoke` ships: a traced-off and a
        // bare-baseline cell for every pair protocol, each pair visible
        // to the overhead extractor (so a renamed prefix or a dropped
        // protocol block can't silently turn the gate into its no-pairs
        // default of 1.0).
        let cells = trace_cells_at(4_000);
        assert_eq!(cells.len(), 2 * THREADED_PROTOCOLS.len());
        for prefix in [TRACE_PAIR.0, TRACE_PAIR.1] {
            assert_eq!(
                cells
                    .iter()
                    .filter(|c| c.scenario.starts_with(prefix))
                    .count(),
                THREADED_PROTOCOLS.len(),
                "{prefix} cells missing"
            );
        }
        // Every traced-off cell found its baseline twin: perturbing one
        // pair's traced-off wall-clock must move the geomean.
        let base = trace_overhead_geomean(&cells);
        assert!(base > 0.0);
        let mut perturbed = cells.clone();
        let c = perturbed
            .iter_mut()
            .find(|c| c.scenario.starts_with(TRACE_PAIR.0))
            .expect("traced-off cell");
        c.wall_ms *= 10.0;
        assert!(trace_overhead_geomean(&perturbed) > base);
        // Disabling tracing is transparent down to the metered words —
        // the pair twins replay the identical deterministic transcript.
        for c in &cells {
            if let Some(name) = c.scenario.strip_prefix(TRACE_PAIR.0) {
                let twin = cells
                    .iter()
                    .find(|d| d.scenario.strip_prefix(TRACE_PAIR.1) == Some(name))
                    .expect("baseline twin");
                assert_eq!(
                    c.words, twin.words,
                    "disabled tracing changed the transcript"
                );
                assert_eq!(
                    c.messages, twin.messages,
                    "disabled tracing changed the transcript"
                );
            }
        }
    }

    #[test]
    fn scale_cells_pair_up_and_feed_the_speedup_metric() {
        // Run the *real* cell builder at a small n: a threaded and a
        // sharded cell per (k, protocol), with every k=256 pair visible
        // to the speedup extractor.
        let cells = scale_cells_at(2_000);
        assert_eq!(cells.len(), 2 * SCALE_KS.len() * SCALE_PROTOCOLS.len());
        for prefix in [SCALE_PAIR.0, SCALE_PAIR.1] {
            for k in SCALE_KS {
                assert_eq!(
                    cells
                        .iter()
                        .filter(|c| c.scenario.starts_with(prefix)
                            && c.scenario.contains(&format!("/k{k}/")))
                        .count(),
                    SCALE_PROTOCOLS.len(),
                    "{prefix} cells missing at k={k}"
                );
            }
        }
        // Every k=256 sharded cell found its threaded twin: perturbing
        // one pair must move the geomean.
        let base = sharded_scale_speedup_k256(&cells);
        assert!(base > 0.0);
        let mut perturbed = cells.clone();
        let c = perturbed
            .iter_mut()
            .find(|c| c.scenario.starts_with(SCALE_PAIR.1) && c.scenario.contains("/k256/"))
            .expect("sharded k256 cell");
        c.items_per_sec *= 10.0;
        assert!(sharded_scale_speedup_k256(&perturbed) > base);
        assert_eq!(sharded_scale_speedup_k256(&[]), 1.0);
    }

    #[test]
    fn async_cells_pair_up_and_feed_the_recorded_ratio() {
        // Run the *real* cell builder at a small n: a sharded and an
        // async cell per (k, protocol), with every k=4096 pair visible
        // to the ratio extractor. Small k-independent n keeps the
        // k=4096 spawn/teardown the dominant cost, which is exactly the
        // path this test needs to exercise.
        let cells = async_cells_at(1_000);
        assert_eq!(cells.len(), 2 * ASYNC_KS.len() * ASYNC_PROTOCOLS.len());
        for prefix in [ASYNC_PAIR.0, ASYNC_PAIR.1] {
            for k in ASYNC_KS {
                assert_eq!(
                    cells
                        .iter()
                        .filter(|c| c.scenario.starts_with(prefix)
                            && c.scenario.contains(&format!("/k{k}/")))
                        .count(),
                    ASYNC_PROTOCOLS.len(),
                    "{prefix} cells missing at k={k}"
                );
            }
        }
        // The two prefixes must not shadow each other: an async cell
        // name never parses as a sharded one and vice versa.
        for c in &cells {
            assert_ne!(
                c.scenario.starts_with(ASYNC_PAIR.0),
                c.scenario.strip_prefix(ASYNC_PAIR.1).is_some(),
                "ambiguous cell name {}",
                c.scenario
            );
        }
        // Every k=4096 async cell found its sharded twin: perturbing
        // one pair must move the geomean.
        let base = async_vs_sharded_k4096(&cells);
        assert!(base > 0.0);
        let mut perturbed = cells.clone();
        let c = perturbed
            .iter_mut()
            .find(|c| c.scenario.starts_with(ASYNC_PAIR.1) && c.scenario.contains("/k4096/"))
            .expect("async k4096 cell");
        c.items_per_sec *= 10.0;
        assert!(async_vs_sharded_k4096(&perturbed) > base);
        assert_eq!(async_vs_sharded_k4096(&[]), 1.0);
    }

    #[test]
    #[ignore = "full-scale flow-control probe; run with --ignored --nocapture to tune"]
    fn free_flow_scale_probe() {
        let cells = free_flow_cells_at(SCALE_N);
        for c in &cells {
            println!(
                "{:<70} {:>9} words {:>9.1} ms",
                c.scenario, c.words, c.wall_ms
            );
        }
        println!(
            "throughput {:.2}x  words_factor {:.3}",
            adaptive_vs_fixed_throughput(&cells),
            free_run_words_factor(&cells)
        );
    }

    #[test]
    fn free_flow_cells_triple_up_and_feed_both_metrics() {
        // Run the *real* cell builder at a small n: a deterministic, a
        // fixed-window, and an adaptive cell per (k, protocol) point,
        // every pair visible to both extractors (so a renamed prefix
        // can't silently turn either gate into its no-pairs default).
        let cells = free_flow_cells_at(2_000);
        assert_eq!(cells.len(), 3 * FREE_KS.len() * FREE_PROTOCOLS.len());
        for prefix in [FREE_TRIPLE.0, FREE_TRIPLE.1, FREE_TRIPLE.2] {
            for k in FREE_KS {
                assert_eq!(
                    cells
                        .iter()
                        .filter(|c| c.scenario.starts_with(prefix)
                            && c.scenario.contains(&format!("/k{k}/")))
                        .count(),
                    FREE_PROTOCOLS.len(),
                    "{prefix} cells missing at k={k}"
                );
            }
        }
        // Every adaptive cell found its fixed twin: perturbing one
        // adaptive throughput must move the geomean.
        let base = adaptive_vs_fixed_throughput(&cells);
        assert!(base > 0.0);
        let mut perturbed = cells.clone();
        let c = perturbed
            .iter_mut()
            .find(|c| c.scenario.starts_with(FREE_TRIPLE.2))
            .expect("adaptive cell");
        c.items_per_sec *= 10.0;
        assert!(adaptive_vs_fixed_throughput(&perturbed) > base);
        assert_eq!(adaptive_vs_fixed_throughput(&[]), 1.0);
        // Every free-running cell found its deterministic twin. (The
        // ≤ [`FREE_WORDS_CEILING`] contract is enforced by `experiments
        // smoke` at the real [`SCALE_N`]; at this tiny n the per-run
        // sync overhead dominates and the ratio is legitimately larger.)
        let factor = free_run_words_factor(&cells);
        assert!(factor >= 1.0, "words factor {factor} below 1.0");
        let mut inflated = cells.clone();
        let c = inflated
            .iter_mut()
            .find(|c| c.scenario.starts_with(FREE_TRIPLE.2))
            .expect("adaptive cell");
        c.words *= 100;
        assert!(free_run_words_factor(&inflated) > factor);
        assert_eq!(free_run_words_factor(&[]), 1.0);
        // The ceiling is the testkit's budget headroom, not a drifting
        // local copy.
        assert_eq!(FREE_WORDS_CEILING, dtrack_testkit::bound::FREE_RUN_HEADROOM);
    }

    #[test]
    fn smoke_json_is_valid_enough() {
        let results = vec![SmokeResult {
            scenario: "hh-exact/zipf/round-robin/k4/eps0.1/n20000/seed1".to_owned(),
            words: 1234,
            messages: 567,
            wall_ms: 8.5,
            items_per_sec: 2_352_941.0,
        }];
        let j = smoke_json(&results);
        assert!(j.contains("\"schema\": \"dtrack-bench-smoke/v7\""));
        assert!(j.contains("\"threaded_batched_speedup\""));
        assert!(j.contains("\"facade_overhead_geomean\""));
        assert!(j.contains("\"sharded_scale_speedup_k256\""));
        assert!(j.contains("\"adaptive_vs_fixed_throughput\""));
        assert!(j.contains("\"free_run_words_factor\""));
        assert!(j.contains("\"async_vs_sharded_k4096\""));
        assert!(j.contains("\"trace_overhead_geomean\""));
        assert!(j.contains("\"words\": 1234"));
        assert!(j.ends_with("]\n}\n"));
        // Balanced braces/brackets, no trailing comma before the close.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",\n  ]"));
    }
}
