//! Smoke benchmark: one tiny, fixed scenario per protocol family, timed
//! end-to-end and emitted as a JSON snapshot.
//!
//! ```text
//! cargo run --release -p dtrack-bench --bin experiments -- smoke
//! ```
//!
//! writes `BENCH_seed.json` — the first point of the repo's performance
//! trajectory. Metered words/messages are bit-for-bit deterministic
//! (regressions there are protocol changes, not noise); wall-clock
//! throughput is indicative.

use dtrack_testkit::{measure_cost, AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario};
use std::time::Instant;

/// One timed smoke cell.
#[derive(Debug, Clone)]
pub struct SmokeResult {
    /// Replayable scenario name.
    pub scenario: String,
    /// Metered words (deterministic).
    pub words: u64,
    /// Metered messages (deterministic).
    pub messages: u64,
    /// Wall-clock time for the whole run.
    pub wall_ms: f64,
    /// Items fed per wall-clock second.
    pub items_per_sec: f64,
}

/// The smoke matrix: every protocol family once, at a size small enough
/// to finish in well under a second per cell even in debug builds.
pub fn smoke_scenarios() -> Vec<Scenario> {
    let protocols = [
        ProtocolSpec::Counter,
        ProtocolSpec::HhExact,
        ProtocolSpec::HhSketched,
        ProtocolSpec::QuantileExact { phi: 0.5 },
        ProtocolSpec::QuantileSketched { phi: 0.5 },
        ProtocolSpec::AllQExact,
        ProtocolSpec::Cgmr,
        ProtocolSpec::Polling,
        ProtocolSpec::ForwardAll,
    ];
    protocols
        .into_iter()
        .map(|protocol| {
            Scenario::new(
                GeneratorSpec::Zipf {
                    universe: 1 << 20,
                    s: 1.2,
                },
                AssignmentSpec::RoundRobin,
                4,
                0.1,
                20_000,
                1,
                protocol,
            )
        })
        .collect()
}

/// Run the smoke matrix, timing each scenario.
pub fn run_smoke() -> Vec<SmokeResult> {
    smoke_scenarios()
        .iter()
        .map(|scenario| {
            let start = Instant::now();
            let report = measure_cost(scenario).expect("smoke scenario failed");
            let wall = start.elapsed();
            SmokeResult {
                scenario: report.scenario,
                words: report.words,
                messages: report.messages,
                wall_ms: wall.as_secs_f64() * 1e3,
                items_per_sec: scenario.n as f64 / wall.as_secs_f64().max(1e-9),
            }
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render smoke results as a stable, human-diffable JSON document.
pub fn smoke_json(results: &[SmokeResult]) -> String {
    let mut out = String::from("{\n  \"schema\": \"dtrack-bench-smoke/v1\",\n  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"words\": {}, \"messages\": {}, \
             \"wall_ms\": {:.3}, \"items_per_sec\": {:.0}}}{}\n",
            json_escape(&r.scenario),
            r.words,
            r.messages,
            r.wall_ms,
            r.items_per_sec,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_every_protocol_family() {
        let scenarios = smoke_scenarios();
        assert_eq!(scenarios.len(), 9);
        let labels: std::collections::BTreeSet<_> =
            scenarios.iter().map(|s| s.protocol.label()).collect();
        assert_eq!(labels.len(), 9);
    }

    #[test]
    fn smoke_json_is_valid_enough() {
        let results = vec![SmokeResult {
            scenario: "hh-exact/zipf/round-robin/k4/eps0.1/n20000/seed1".to_owned(),
            words: 1234,
            messages: 567,
            wall_ms: 8.5,
            items_per_sec: 2_352_941.0,
        }];
        let j = smoke_json(&results);
        assert!(j.contains("\"schema\": \"dtrack-bench-smoke/v1\""));
        assert!(j.contains("\"words\": 1234"));
        assert!(j.ends_with("]\n}\n"));
        // Balanced braces/brackets, no trailing comma before the close.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",\n  ]"));
    }
}
