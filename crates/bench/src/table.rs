//! Minimal table type: aligned console output plus CSV export.

use std::fmt;
use std::io::Write;
use std::path::Path;

/// A result table with a title, a slug (used as the CSV file name), and
/// string cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Human-readable title shown above the table.
    pub title: String,
    /// File-name-safe identifier.
    pub slug: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row should match `headers` in length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(slug: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            slug: slug.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of displayable cells.
    pub fn row<I, D>(&mut self, cells: I)
    where
        I: IntoIterator<Item = D>,
        D: fmt::Display,
    {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        debug_assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Write the table as `<dir>/<slug>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::io::BufWriter::new(std::fs::File::create(
            dir.join(format!("{}.csv", self.slug)),
        )?);
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(c.len());
                write!(f, "{c:>w$}  ")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with 3 significant-ish decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", "Demo", &["n", "words"]);
        t.row(["1000", "42"]);
        t.row(["1000000", "123456"]);
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("123456"));
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo_csv", "Demo", &["a", "b"]);
        t.row(["1", "2"]);
        let dir = std::env::temp_dir().join("dtrack-table-test");
        t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("demo_csv.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(1.23456), "1.235");
    }
}
