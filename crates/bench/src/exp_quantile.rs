//! Single-quantile experiments: Theorem 3.1 scaling shapes, accuracy
//! across φ, and the granularity ablation.
//!
//! Pure cost-shape sweeps (E7) are metered through the shared
//! `dtrack-testkit` scenario harness. E6, E8, and E16 keep dedicated
//! loops because they read protocol internals the scenario abstraction
//! deliberately does not expose (coordinator rebuild/recenter/split
//! statistics, per-checkpoint worst rank error).

use dtrack_core::quantile::{
    exact_cluster, ExactQuantileSite, QuantileConfig, QuantileCoordinator,
};
use dtrack_core::ExactOracle;
use dtrack_sim::Cluster;
use dtrack_testkit::{measure_cost, AssignmentSpec, GeneratorSpec, ProtocolSpec, Scenario};
use dtrack_workload::{Assignment, Generator, RoundRobin, SortedRamp, Uniform};

use crate::table::{f3, Table};

fn run_quantile(
    config: QuantileConfig,
    n: u64,
    gen: &mut dyn Generator,
    assign: &mut dyn Assignment,
) -> Cluster<ExactQuantileSite, QuantileCoordinator> {
    let mut cluster = exact_cluster(config).expect("cluster");
    for _ in 0..n {
        cluster
            .feed(assign.next_site(), gen.next_item())
            .expect("feed");
    }
    cluster
}

fn q_bound(k: u32, epsilon: f64, n: u64) -> f64 {
    k as f64 / epsilon * (n as f64).ln()
}

/// E6 — median cost vs n: the words/(k/ε·ln n) ratio must stay roughly
/// flat (Theorem 3.1 shape).
pub fn e6_cost_vs_n() -> Table {
    let (k, epsilon) = (8u32, 0.02f64);
    let mut t = Table::new(
        "e6_median_cost_vs_n",
        "E6  Thm 3.1: median-tracking communication vs n (k=8, eps=0.02, uniform)",
        &[
            "n",
            "words",
            "rebuilds",
            "recenters",
            "splits",
            "words/(k/eps ln n)",
        ],
    );
    for n in [100_000u64, 1_000_000, 4_000_000] {
        let config = QuantileConfig::median(k, epsilon).expect("config");
        let mut gen = Uniform::new(1 << 40, 21);
        let mut assign = RoundRobin::new(k);
        let cluster = run_quantile(config, n, &mut gen, &mut assign);
        let stats = cluster.coordinator().stats();
        let words = cluster.meter().total_words();
        t.row([
            n.to_string(),
            words.to_string(),
            stats.rebuilds.to_string(),
            stats.recenters.to_string(),
            stats.splits.to_string(),
            f3(words as f64 / q_bound(k, epsilon, n)),
        ]);
    }
    t
}

/// E7 — cost vs k (at fixed ε) and vs ε (at fixed k): both scalings of
/// Theorem 3.1 in two tables.
pub fn e7_cost_vs_k_and_eps() -> Vec<Table> {
    let n = 1_000_000u64;
    let median_scenario = |k: u32, epsilon: f64| {
        Scenario::new(
            GeneratorSpec::Uniform { universe: 1 << 40 },
            AssignmentSpec::RoundRobin,
            k,
            epsilon,
            n,
            5,
            ProtocolSpec::QuantileExact { phi: 0.5 },
        )
    };
    let mut by_k = Table::new(
        "e7a_median_cost_vs_k",
        "E7a Thm 3.1: median communication vs k (n=1e6, eps=0.05)",
        &["k", "words", "words/k"],
    );
    for k in [2u32, 4, 8, 16, 32] {
        let words = measure_cost(&median_scenario(k, 0.05))
            .expect("scenario")
            .words;
        by_k.row([
            k.to_string(),
            words.to_string(),
            (words / k as u64).to_string(),
        ]);
    }
    let mut by_eps = Table::new(
        "e7b_median_cost_vs_eps",
        "E7b Thm 3.1: median communication vs eps (n=1e6, k=8)",
        &["eps", "words", "words*eps (flat)"],
    );
    for epsilon in [0.1f64, 0.05, 0.02, 0.01] {
        let words = measure_cost(&median_scenario(8, epsilon))
            .expect("scenario")
            .words;
        by_eps.row([
            epsilon.to_string(),
            words.to_string(),
            f3(words as f64 * epsilon),
        ]);
    }
    vec![by_k, by_eps]
}

/// E8 — accuracy across φ: the worst observed rank error of the tracked
/// quantile, as a fraction of ε·n, on both benign and adversarial streams.
pub fn e8_accuracy() -> Table {
    let (k, epsilon, n) = (6u32, 0.05f64, 400_000u64);
    let mut t = Table::new(
        "e8_quantile_accuracy",
        "E8  Quantile ε-guarantee across phi (k=6, eps=0.05): max rank error / (eps n)",
        &["phi", "uniform", "sorted ramp"],
    );
    for phi in [0.05f64, 0.25, 0.5, 0.75, 0.95] {
        let mut cells = vec![phi.to_string()];
        for ramp in [false, true] {
            let config = QuantileConfig::new(k, epsilon, phi).expect("config");
            let mut cluster = exact_cluster(config).expect("cluster");
            let mut oracle = ExactOracle::new();
            let mut u = Uniform::new(1 << 40, 17);
            let mut r = SortedRamp::new(0, 977);
            let mut assign = RoundRobin::new(k);
            let mut worst = 0.0f64;
            for i in 0..n {
                let x = if ramp { r.next_item() } else { u.next_item() };
                oracle.observe(x);
                cluster.feed(assign.next_site(), x).expect("feed");
                if i % 1009 == 0 && i > 0 {
                    if let Some(q) = cluster.coordinator().quantile() {
                        let err = oracle.quantile_rank_error(q, phi) as f64
                            / (epsilon * oracle.total() as f64);
                        worst = worst.max(err);
                    }
                }
            }
            cells.push(f3(worst));
        }
        t.row(cells);
    }
    t
}

/// E16 — ablation of the interval granularity constant (paper: build at
/// 3εm/16, split at εm/4).
pub fn e16_granularity_ablation() -> Table {
    let (k, epsilon, n) = (8u32, 0.05f64, 1_000_000u64);
    let mut t = Table::new(
        "e16_quantile_granularity",
        "E16 Ablation: interval granularity constant (k=8, eps=0.05, n=1e6)",
        &[
            "granularity",
            "words",
            "separators",
            "recenters",
            "splits",
            "probes",
        ],
    );
    for g in [1u32, 2, 3, 4, 6] {
        let config = QuantileConfig::median(k, epsilon)
            .expect("config")
            .with_granularity(g);
        let mut gen = Uniform::new(1 << 40, 13);
        let mut assign = RoundRobin::new(k);
        let cluster = run_quantile(config, n, &mut gen, &mut assign);
        let stats = cluster.coordinator().stats();
        t.row([
            g.to_string(),
            cluster.meter().total_words().to_string(),
            cluster.coordinator().separator_count().to_string(),
            stats.recenters.to_string(),
            stats.splits.to_string(),
            stats.probes.to_string(),
        ]);
    }
    t
}
