//! Lower-bound experiments: the Lemma 2.2/2.3 adversary against our
//! heavy-hitter protocol (Theorem 2.4) and the §3.2 median construction
//! (Theorem 3.2).

use dtrack_adversary::{HhLowerBound, MedianLowerBound, ThresholdAdversary};
use dtrack_core::hh::{exact_cluster as hh_cluster, HhConfig};
use dtrack_core::quantile::{exact_cluster as q_cluster, QuantileConfig};
use dtrack_sim::SiteId;

use crate::table::{f3, Table};

/// E5 — Theorem 2.4: drive the Lemma 2.2 input with the Lemma 2.3
/// adversary and measure the messages forced per heavy-hitter change.
/// The per-change column must grow linearly with k (the Ω(k) bound) and
/// the total must track k/ε·log n.
pub fn e5_hh_lower_bound() -> Table {
    let (phi, epsilon) = (0.3f64, 0.05f64);
    let mut t = Table::new(
        "e5_hh_lower_bound",
        "E5  Thm 2.4: adversarially forced messages (phi=0.3, eps=0.05)",
        &["k", "changes", "msgs forced", "msgs/change", "msgs/(k/4)"],
    );
    for k in [4u32, 8, 16, 32] {
        let lb = HhLowerBound::construct(phi, epsilon, 2_000_000);
        let config = HhConfig::new(k, epsilon).expect("config");
        let mut cluster = hh_cluster(config).expect("cluster");
        ThresholdAdversary::feed_setup(&mut cluster, &lb.setup).expect("setup");
        let mut chaff_v = dtrack_adversary::hh_lb::CHAFF_BASE + 5_000_000_000;
        let mut forced = 0u64;
        let mut changes = 0u64;
        for round in &lb.rounds {
            for e in &round.rises {
                let outcome =
                    ThresholdAdversary::deliver(&mut cluster, e.item, e.copies).expect("deliver");
                forced += outcome.messages;
                changes += 1;
            }
            chaff_v =
                ThresholdAdversary::feed_chaff(&mut cluster, round.chaff, chaff_v).expect("chaff");
        }
        let per_change = forced as f64 / changes.max(1) as f64;
        t.row([
            k.to_string(),
            changes.to_string(),
            forced.to_string(),
            f3(per_change),
            f3(per_change / (k as f64 / 4.0)),
        ]);
    }
    t
}

/// E9 — Theorem 3.2: the §3.2 two-cluster construction. The median flips
/// Ω(log n/ε) times and our tracker pays for every flip; the words column
/// against the k/ε·ln n unit shows the matching upper bound at work.
pub fn e9_median_lower_bound() -> Table {
    let k = 8u32;
    let mut t = Table::new(
        "e9_median_lower_bound",
        "E9  Thm 3.2: median lower-bound construction (k=8)",
        &["eps", "n", "median flips", "words", "words/(k/eps ln n)"],
    );
    for epsilon in [0.1f64, 0.05, 0.02] {
        let lb = MedianLowerBound::construct(epsilon, 1_000_000);
        let flips = lb.count_median_flips();
        let config = QuantileConfig::median(k, epsilon).expect("config");
        let mut cluster = q_cluster(config).expect("cluster");
        for (i, &x) in lb.items.iter().enumerate() {
            cluster
                .feed(SiteId((i % k as usize) as u32), x)
                .expect("feed");
        }
        let n = lb.items.len() as u64;
        let words = cluster.meter().total_words();
        let unit = k as f64 / epsilon * (n as f64).ln();
        t.row([
            epsilon.to_string(),
            n.to_string(),
            flips.to_string(),
            words.to_string(),
            f3(words as f64 / unit),
        ]);
    }
    t
}
