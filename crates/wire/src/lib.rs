//! `dtrack-wire`: a length-prefixed frame codec for protocol messages.
//!
//! Every site↔coordinator message in the simulator is an in-memory Rust
//! value today. This crate defines the wire shape those values would take
//! across a process or network boundary, so the async backend can prove —
//! byte-for-byte, under the golden equivalence matrix — that serialization
//! does not perturb a single metered word. When sites and coordinator move
//! to separate processes, the transport swaps; the codec stays.
//!
//! # Frame format (version 1)
//!
//! ```text
//! [len: u32 LE]          length of everything after this field
//! [magic: b"DW"]         2 bytes
//! [version: u8]          currently 1
//! [dir: u8]              0 = Up (site -> coordinator), 1 = Down
//! -- dir == Up --
//! [origin: u32 LE]       sending site index
//! [msg bytes]            WireMessage payload
//! -- dir == Down --
//! [dest: u8]             0 = unicast, 1 = broadcast
//! [site: u32 LE]         present only when dest == 0
//! [msg bytes]            WireMessage payload
//! ```
//!
//! All integers are little-endian. Decoding is total: malformed input of
//! any shape yields a typed [`DecodeError`] carrying the byte offset of
//! the fault, never a panic. Vector lengths are sanity-checked against the
//! bytes actually remaining in the frame before any allocation, so a
//! corrupt length prefix cannot trigger an OOM.

use std::sync::atomic::{AtomicU64, Ordering};

/// Frame magic: the two bytes `b"DW"`.
pub const MAGIC: [u8; 2] = [b'D', b'W'];

/// Current frame-format version.
pub const VERSION: u8 = 1;

const DIR_UP: u8 = 0;
const DIR_DOWN: u8 = 1;
const DEST_SITE: u8 = 0;
const DEST_BROADCAST: u8 = 1;

/// A typed decoding failure. Every variant locates the fault by byte
/// offset from the start of the frame (including the 4-byte length
/// prefix), so transport-layer logs can point at the corrupt bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The frame ended before `need` more bytes could be read at `offset`.
    Truncated { need: usize, offset: usize },
    /// The frame's declared length does not match the bytes supplied.
    BadLength { declared: usize, actual: usize },
    /// The two magic bytes were not `b"DW"`.
    BadMagic { found: [u8; 2] },
    /// The frame version is not one this decoder understands.
    BadVersion { found: u8 },
    /// A tag byte (direction, destination, enum discriminant, bool) held
    /// a value outside its domain.
    BadTag {
        context: &'static str,
        tag: u8,
        offset: usize,
    },
    /// A vector length prefix declared more elements than the remaining
    /// frame bytes could possibly hold.
    BadVecLen {
        declared: usize,
        remaining: usize,
        offset: usize,
    },
    /// A frame claimed to carry a message type that has no values
    /// (e.g. a `Down` frame for a protocol whose sites are never
    /// messaged).
    Uninhabited { kind: &'static str, offset: usize },
    /// The message decoded cleanly but bytes were left over.
    Trailing { unread: usize, offset: usize },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { need, offset } => {
                write!(
                    f,
                    "frame truncated: need {need} more byte(s) at offset {offset}"
                )
            }
            DecodeError::BadLength { declared, actual } => {
                write!(
                    f,
                    "frame length mismatch: header declares {declared} byte(s), got {actual}"
                )
            }
            DecodeError::BadMagic { found } => {
                write!(f, "bad frame magic: {found:?}")
            }
            DecodeError::BadVersion { found } => {
                write!(f, "unsupported frame version {found}")
            }
            DecodeError::BadTag {
                context,
                tag,
                offset,
            } => {
                write!(f, "bad {context} tag {tag} at offset {offset}")
            }
            DecodeError::BadVecLen {
                declared,
                remaining,
                offset,
            } => {
                write!(
                    f,
                    "vector length {declared} at offset {offset} exceeds {remaining} remaining byte(s)"
                )
            }
            DecodeError::Uninhabited { kind, offset } => {
                write!(
                    f,
                    "frame at offset {offset} claims uninhabited message type {kind}"
                )
            }
            DecodeError::Trailing { unread, offset } => {
                write!(
                    f,
                    "{unread} trailing byte(s) after message at offset {offset}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Destination of a downstream frame, mirroring the simulator's
/// `Down::{Unicast, Broadcast}` without depending on `dtrack-sim`
/// (the dependency points the other way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// Deliver to one site, by index.
    Site(u32),
    /// Deliver to every site.
    Broadcast,
}

/// A decoded frame: either an upstream message with its origin site or a
/// downstream message with its destination.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<U, D> {
    /// Site -> coordinator.
    Up { origin: u32, msg: U },
    /// Coordinator -> site(s).
    Down { dest: Dest, msg: D },
}

/// A value that can cross the wire. Implementations must be exact
/// inverses: `wire_decode(wire_encode(x)) == x` for every value, a
/// property pinned by proptest roundtrips in the testkit.
pub trait WireMessage: Sized {
    /// Append this value's wire bytes to `out`.
    fn wire_encode(&self, out: &mut Vec<u8>);

    /// Read one value back from the cursor, or report where the bytes
    /// went wrong.
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError>;
}

/// A bounds-checked cursor over a frame's bytes. All reads carry the
/// absolute byte offset into their error, and none of them panic.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Start a cursor at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current absolute offset into the frame.
    #[inline]
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                need: n - self.remaining(),
                offset: self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Read a bool encoded as a `0`/`1` byte.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        let offset = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag {
                context: "bool",
                tag,
                offset,
            }),
        }
    }

    /// Read a tag byte, labelling any error with `context` (e.g. the enum
    /// being decoded).
    pub fn tag(&mut self, context: &'static str) -> Result<(u8, usize), DecodeError> {
        let offset = self.pos;
        let tag = self
            .u8()
            .map_err(|_| DecodeError::Truncated { need: 1, offset })?;
        let _ = context;
        Ok((tag, offset))
    }

    /// Read a vector length prefix, verifying that `len * elem_bytes`
    /// cannot exceed the remaining frame before any allocation happens.
    pub fn vec_len(&mut self, elem_bytes: usize) -> Result<usize, DecodeError> {
        let offset = self.pos;
        let declared = self.u32()? as usize;
        let remaining = self.remaining();
        if declared.saturating_mul(elem_bytes) > remaining {
            return Err(DecodeError::BadVecLen {
                declared,
                remaining,
                offset,
            });
        }
        Ok(declared)
    }

    /// Read a length-prefixed `Vec<u64>`.
    pub fn vec_u64(&mut self) -> Result<Vec<u64>, DecodeError> {
        let len = self.vec_len(8)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    /// Read a length-prefixed `Vec<u32>`.
    pub fn vec_u32(&mut self) -> Result<Vec<u32>, DecodeError> {
        let len = self.vec_len(4)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.u32()?);
        }
        Ok(v)
    }
}

/// Append one byte.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32`.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a bool as a `0`/`1` byte.
#[inline]
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Append a length-prefixed `&[u64]`.
pub fn put_vec_u64(out: &mut Vec<u8>, v: &[u64]) {
    put_u32(out, v.len() as u32);
    for x in v {
        put_u64(out, *x);
    }
}

/// Append a length-prefixed `&[u32]`.
pub fn put_vec_u32(out: &mut Vec<u8>, v: &[u32]) {
    put_u32(out, v.len() as u32);
    for x in v {
        put_u32(out, *x);
    }
}

fn frame_header(dir: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&[0, 0, 0, 0]);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(dir);
    out
}

fn seal(mut out: Vec<u8>) -> Vec<u8> {
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_le_bytes());
    out
}

/// Encode an upstream message from site `origin` into a complete frame.
pub fn encode_up<U: WireMessage>(origin: u32, msg: &U) -> Vec<u8> {
    let mut out = frame_header(DIR_UP);
    put_u32(&mut out, origin);
    msg.wire_encode(&mut out);
    seal(out)
}

/// Encode a downstream message for `dest` into a complete frame.
pub fn encode_down<D: WireMessage>(dest: Dest, msg: &D) -> Vec<u8> {
    let mut out = frame_header(DIR_DOWN);
    match dest {
        Dest::Site(site) => {
            put_u8(&mut out, DEST_SITE);
            put_u32(&mut out, site);
        }
        Dest::Broadcast => put_u8(&mut out, DEST_BROADCAST),
    }
    msg.wire_encode(&mut out);
    seal(out)
}

/// Decode one complete frame into either an `Up` or a `Down` message.
/// Rejects short/overlong input, bad magic, unknown versions, unknown
/// direction or destination tags, and trailing bytes.
pub fn decode<U: WireMessage, D: WireMessage>(frame: &[u8]) -> Result<Frame<U, D>, DecodeError> {
    let mut r = WireReader::new(frame);
    let declared = r.u32()? as usize;
    if declared != frame.len() - 4 {
        return Err(DecodeError::BadLength {
            declared,
            actual: frame.len() - 4,
        });
    }
    let magic = r.take(2)?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic {
            found: [magic[0], magic[1]],
        });
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion { found: version });
    }
    let (dir, dir_off) = r.tag("direction")?;
    let out = match dir {
        DIR_UP => {
            let origin = r.u32()?;
            let msg = U::wire_decode(&mut r)?;
            Frame::Up { origin, msg }
        }
        DIR_DOWN => {
            let (dest_tag, dest_off) = r.tag("destination")?;
            let dest = match dest_tag {
                DEST_SITE => Dest::Site(r.u32()?),
                DEST_BROADCAST => Dest::Broadcast,
                tag => {
                    return Err(DecodeError::BadTag {
                        context: "destination",
                        tag,
                        offset: dest_off,
                    })
                }
            };
            let msg = D::wire_decode(&mut r)?;
            Frame::Down { dest, msg }
        }
        tag => {
            return Err(DecodeError::BadTag {
                context: "direction",
                tag,
                offset: dir_off,
            })
        }
    };
    if r.remaining() != 0 {
        return Err(DecodeError::Trailing {
            unread: r.remaining(),
            offset: r.offset(),
        });
    }
    Ok(out)
}

/// An in-memory loopback transport: every message is encoded to a full
/// frame and decoded back before delivery, with per-direction frame and
/// byte counters. This is the stand-in for a socket; the async backend
/// routes all site↔coordinator traffic through it when wire mode is on.
#[derive(Debug, Default)]
pub struct Loopback {
    frames_up: AtomicU64,
    frames_down: AtomicU64,
    bytes_up: AtomicU64,
    bytes_down: AtomicU64,
}

/// A snapshot of [`Loopback`] traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Upstream frames carried.
    pub frames_up: u64,
    /// Downstream frames carried.
    pub frames_down: u64,
    /// Total upstream frame bytes, length prefix included.
    pub bytes_up: u64,
    /// Total downstream frame bytes, length prefix included.
    pub bytes_down: u64,
}

impl Loopback {
    /// Create a transport with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Carry one upstream message: encode to a frame, decode it back, and
    /// return the reconstructed origin + message.
    pub fn roundtrip_up<U: WireMessage>(
        &self,
        origin: u32,
        msg: &U,
    ) -> Result<(u32, U), DecodeError> {
        self.roundtrip_up_sized(origin, msg)
            .map(|(origin, msg, _)| (origin, msg))
    }

    /// [`Self::roundtrip_up`] plus the carried frame's byte length
    /// (length prefix included) — the tracing layer's per-frame size
    /// source.
    pub fn roundtrip_up_sized<U: WireMessage>(
        &self,
        origin: u32,
        msg: &U,
    ) -> Result<(u32, U, u64), DecodeError> {
        let frame = encode_up(origin, msg);
        let bytes = frame.len() as u64;
        self.frames_up.fetch_add(1, Ordering::SeqCst);
        self.bytes_up.fetch_add(bytes, Ordering::SeqCst);
        match decode::<U, Unreachable>(&frame)? {
            Frame::Up { origin, msg } => Ok((origin, msg, bytes)),
            Frame::Down { .. } => Err(DecodeError::BadTag {
                context: "direction",
                tag: DIR_DOWN,
                offset: 7,
            }),
        }
    }

    /// Carry one downstream message: encode to a frame, decode it back,
    /// and return the reconstructed destination + message.
    pub fn roundtrip_down<D: WireMessage>(
        &self,
        dest: Dest,
        msg: &D,
    ) -> Result<(Dest, D), DecodeError> {
        self.roundtrip_down_sized(dest, msg)
            .map(|(dest, msg, _)| (dest, msg))
    }

    /// [`Self::roundtrip_down`] plus the carried frame's byte length
    /// (length prefix included).
    pub fn roundtrip_down_sized<D: WireMessage>(
        &self,
        dest: Dest,
        msg: &D,
    ) -> Result<(Dest, D, u64), DecodeError> {
        let frame = encode_down(dest, msg);
        let bytes = frame.len() as u64;
        self.frames_down.fetch_add(1, Ordering::SeqCst);
        self.bytes_down.fetch_add(bytes, Ordering::SeqCst);
        match decode::<Unreachable, D>(&frame)? {
            Frame::Down { dest, msg } => Ok((dest, msg, bytes)),
            Frame::Up { .. } => Err(DecodeError::BadTag {
                context: "direction",
                tag: DIR_UP,
                offset: 7,
            }),
        }
    }

    /// Snapshot the traffic counters.
    pub fn stats(&self) -> WireStats {
        WireStats {
            frames_up: self.frames_up.load(Ordering::SeqCst),
            frames_down: self.frames_down.load(Ordering::SeqCst),
            bytes_up: self.bytes_up.load(Ordering::SeqCst),
            bytes_down: self.bytes_down.load(Ordering::SeqCst),
        }
    }
}

/// Helper type for directions a loopback call cannot produce; decoding it
/// is always an error.
#[derive(Debug, Clone, PartialEq)]
enum Unreachable {}

impl WireMessage for Unreachable {
    fn wire_encode(&self, _out: &mut Vec<u8>) {
        match *self {}
    }
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Err(DecodeError::Uninhabited {
            kind: "wire/unreachable",
            offset: r.offset(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum TestMsg {
        Sig,
        Delta(u64),
        Batch {
            id: u32,
            counts: Vec<u64>,
            left: bool,
        },
    }

    impl WireMessage for TestMsg {
        fn wire_encode(&self, out: &mut Vec<u8>) {
            match self {
                TestMsg::Sig => put_u8(out, 0),
                TestMsg::Delta(d) => {
                    put_u8(out, 1);
                    put_u64(out, *d);
                }
                TestMsg::Batch { id, counts, left } => {
                    put_u8(out, 2);
                    put_u32(out, *id);
                    put_vec_u64(out, counts);
                    put_bool(out, *left);
                }
            }
        }
        fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
            let (tag, offset) = r.tag("TestMsg")?;
            match tag {
                0 => Ok(TestMsg::Sig),
                1 => Ok(TestMsg::Delta(r.u64()?)),
                2 => Ok(TestMsg::Batch {
                    id: r.u32()?,
                    counts: r.vec_u64()?,
                    left: r.bool()?,
                }),
                tag => Err(DecodeError::BadTag {
                    context: "TestMsg",
                    tag,
                    offset,
                }),
            }
        }
    }

    fn sample() -> Vec<TestMsg> {
        vec![
            TestMsg::Sig,
            TestMsg::Delta(0),
            TestMsg::Delta(u64::MAX),
            TestMsg::Batch {
                id: 7,
                counts: vec![],
                left: false,
            },
            TestMsg::Batch {
                id: u32::MAX,
                counts: vec![1, 2, 3, u64::MAX],
                left: true,
            },
        ]
    }

    #[test]
    fn up_frames_roundtrip() {
        for msg in sample() {
            let frame = encode_up(42, &msg);
            match decode::<TestMsg, TestMsg>(&frame) {
                Ok(Frame::Up { origin, msg: back }) => {
                    assert_eq!(origin, 42);
                    assert_eq!(back, msg);
                }
                other => panic!("expected Up frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn down_frames_roundtrip_both_dests() {
        for msg in sample() {
            for dest in [Dest::Site(3), Dest::Broadcast] {
                let frame = encode_down(dest, &msg);
                match decode::<TestMsg, TestMsg>(&frame) {
                    Ok(Frame::Down { dest: d, msg: back }) => {
                        assert_eq!(d, dest);
                        assert_eq!(back, msg);
                    }
                    other => panic!("expected Down frame, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let frame = encode_up(
            9,
            &TestMsg::Batch {
                id: 1,
                counts: vec![5, 6],
                left: true,
            },
        );
        for cut in 0..frame.len() {
            let err = decode::<TestMsg, TestMsg>(&frame[..cut]);
            assert!(err.is_err(), "truncation at {cut} decoded: {err:?}");
        }
    }

    #[test]
    fn corrupt_headers_are_typed() {
        let good = encode_down(Dest::Site(1), &TestMsg::Sig);

        let mut bad = good.clone();
        bad[4] = b'X';
        assert!(matches!(
            decode::<TestMsg, TestMsg>(&bad),
            Err(DecodeError::BadMagic { .. })
        ));

        let mut bad = good.clone();
        bad[6] = 99;
        assert!(matches!(
            decode::<TestMsg, TestMsg>(&bad),
            Err(DecodeError::BadVersion { found: 99 })
        ));

        let mut bad = good.clone();
        bad[7] = 5;
        assert!(matches!(
            decode::<TestMsg, TestMsg>(&bad),
            Err(DecodeError::BadTag {
                context: "direction",
                tag: 5,
                ..
            })
        ));

        let mut bad = good.clone();
        bad[8] = 9;
        assert!(matches!(
            decode::<TestMsg, TestMsg>(&bad),
            Err(DecodeError::BadTag {
                context: "destination",
                tag: 9,
                ..
            })
        ));

        let mut bad = good.clone();
        bad[0] = bad[0].wrapping_add(1);
        assert!(matches!(
            decode::<TestMsg, TestMsg>(&bad),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn oversized_vec_len_rejected_before_allocation() {
        // Hand-build a Batch frame whose vec length prefix claims far more
        // elements than the frame holds.
        let mut out = frame_header(DIR_UP);
        put_u32(&mut out, 0); // origin
        put_u8(&mut out, 2); // Batch tag
        put_u32(&mut out, 1); // id
        put_u32(&mut out, u32::MAX); // absurd vec length
        let frame = seal(out);
        assert!(matches!(
            decode::<TestMsg, TestMsg>(&frame),
            Err(DecodeError::BadVecLen { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = encode_up(0, &TestMsg::Sig);
        frame.push(0xAB);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            decode::<TestMsg, TestMsg>(&frame),
            Err(DecodeError::Trailing { unread: 1, .. })
        ));
    }

    #[test]
    fn loopback_counts_traffic_and_preserves_messages() {
        let lb = Loopback::new();
        let (origin, up) = lb.roundtrip_up(5, &TestMsg::Delta(17)).unwrap();
        assert_eq!((origin, up), (5, TestMsg::Delta(17)));
        let (dest, down) = lb.roundtrip_down(Dest::Broadcast, &TestMsg::Sig).unwrap();
        assert_eq!(dest, Dest::Broadcast);
        assert_eq!(down, TestMsg::Sig);
        let stats = lb.stats();
        assert_eq!(stats.frames_up, 1);
        assert_eq!(stats.frames_down, 1);
        assert!(stats.bytes_up > 8 && stats.bytes_down > 8);
    }

    #[test]
    fn garbage_never_panics() {
        // Deterministic pseudo-random garbage: splitmix64 stream.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for len in 0..64 {
            let mut buf = vec![0u8; len];
            for b in buf.iter_mut() {
                *b = next() as u8;
            }
            // Pin the declared length to the actual length half the time so
            // decoding gets past the header checks.
            if len >= 4 && len % 2 == 0 {
                let l = (len - 4) as u32;
                buf[..4].copy_from_slice(&l.to_le_bytes());
            }
            let _ = decode::<TestMsg, TestMsg>(&buf);
        }
    }
}
