//! The async backend: every site is a cooperative task multiplexed onto
//! a fixed worker pool by the offline tokio-style executor, and — with
//! `wire: true` — every `Up`/`Down` message makes a round trip through
//! the `dtrack-wire` length-prefixed codec before delivery. Same
//! `Tracker` facade, same transcript: on the site-at-a-time `feed_batch`
//! schedule the answers *and* the metered words are bit-identical to the
//! deterministic backend, codec on or off.
//!
//! ```text
//! cargo run --release --example async_backend
//! ```

use dtrack::prelude::*;
use dtrack::workload::{Generator, Zipf};

fn run(backend: BackendKind, label: &str) -> (u64, u64, String) {
    let k = 8u32;
    let config = HhConfig::new(k, 0.05).expect("valid parameters");
    let mut tracker = Tracker::builder()
        .backend(backend)
        .protocol(HhExactProtocol::new(config))
        .build()
        .expect("spawn backend");

    // Site-at-a-time batches keep the delivery order canonical, so the
    // metered cost is comparable word-for-word across backends.
    let mut gen = Zipf::new(1 << 16, 1.2, 42);
    for site in 0..k {
        let batch: Vec<(SiteId, u64)> = (0..25_000)
            .map(|_| (SiteId(site), gen.next_item()))
            .collect();
        tracker.feed_batch(&batch).expect("feed");
    }

    let hh = tracker
        .query(Query::HeavyHitters { phi: 0.1 })
        .expect("query");
    let answer = hh.to_string();
    let meter = tracker.finish().expect("clean shutdown");
    println!(
        "{label:<28} {:>9} words {:>7} msgs  {answer}",
        meter.total_words(),
        meter.total_messages(),
    );
    (meter.total_words(), meter.total_messages(), answer)
}

fn main() {
    println!("heavy hitters over 8 sites, three executions of one protocol:\n");
    let baseline = run(BackendKind::Deterministic, "deterministic");
    // Eight site tasks + the coordinator task share two worker threads;
    // progress is driven by wakeups, not by a thread per site.
    let plain = run(
        BackendKind::Async {
            workers: Some(2),
            wire: false,
        },
        "async (2 workers)",
    );
    // Same again, but every message is encoded to a length-prefixed
    // frame and decoded back on the far side of a loopback transport.
    let framed = run(
        BackendKind::Async {
            workers: Some(2),
            wire: true,
        },
        "async (2 workers, framed)",
    );

    assert_eq!(baseline, plain, "async transcript must match deterministic");
    assert_eq!(
        baseline, framed,
        "the codec must be invisible to the protocol"
    );
    println!("\nall three transcripts identical, down to the metered words.");
}
