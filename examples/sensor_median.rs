//! Sensor network: track the median and the 95th percentile of readings
//! that drift over time, with per-reading communication far below one
//! message.
//!
//! The paper's §3 protocol maintains a single φ-quantile continuously; we
//! run two independent trackers (φ = 0.5 and φ = 0.95) side by side over
//! the same simulated sensor field.
//!
//! ```text
//! cargo run --release --example sensor_median
//! ```

use dtrack::prelude::*;
use dtrack::workload::{TwoPhaseDrift, UniformSites};

fn tracked(t: &mut Tracker) -> u64 {
    t.query(Query::TrackedQuantile)
        .expect("query")
        .as_quantile()
        .expect("quantile answer")
        .unwrap_or(0)
}

fn main() {
    let k = 10; // sensors
    let epsilon = 0.05;
    let n = 600_000u64;

    let median_cfg = QuantileConfig::median(k, epsilon).expect("valid parameters");
    let p95_cfg = QuantileConfig::new(k, epsilon, 0.95).expect("valid parameters");
    let mut median = Tracker::builder()
        .protocol(QuantileExactProtocol::new(median_cfg))
        .build()
        .expect("tracker");
    let mut p95 = Tracker::builder()
        .protocol(QuantileExactProtocol::new(p95_cfg))
        .build()
        .expect("tracker");
    let mut oracle = ExactOracle::new();

    // Readings sit in a low band, then jump to a high band mid-run
    // (e.g. a heat front passing the field) — every quantile moves.
    let mut readings = TwoPhaseDrift::new(10_000, n / 2, 3);
    let mut sensors = UniformSites::new(k, 5);

    println!(
        "{:>9}  {:>10} {:>10}  {:>10} {:>10}  {:>9}",
        "readings", "med est", "med true", "p95 est", "p95 true", "words"
    );
    for i in 1..=n {
        let r = readings.next_item();
        let s = sensors.next_site();
        oracle.observe(r);
        median.feed(s, r).expect("feed");
        p95.feed(s, r).expect("feed");
        if i % 100_000 == 0 {
            let m_est = tracked(&mut median);
            let p_est = tracked(&mut p95);
            println!(
                "{:>9}  {:>10} {:>10}  {:>10} {:>10}  {:>9}",
                i,
                m_est,
                oracle.quantile(0.5).unwrap_or(0),
                p_est,
                oracle.quantile(0.95).unwrap_or(0),
                median.cost().total_words() + p95.cost().total_words(),
            );
            assert!(
                oracle.quantile_ok(m_est, 0.5, epsilon),
                "median left the ε-band"
            );
            assert!(
                oracle.quantile_ok(p_est, 0.95, epsilon),
                "p95 left the ε-band"
            );
        }
    }
    let median_words = median.finish().expect("teardown").total_words();
    let p95_words = p95.finish().expect("teardown").total_words();
    println!(
        "\ntotal communication for both trackers: {} words over {} readings ({:.4} words/reading)",
        median_words + p95_words,
        n,
        (median_words + p95_words) as f64 / n as f64
    );
}
