//! The same protocol state machines on real OS threads: one thread per
//! site, one for the coordinator, crossbeam channels in between.
//!
//! The deterministic `Cluster` used elsewhere is ideal for metering, but
//! this demonstrates the protocols are genuinely message-driven — no
//! shared state, no hidden synchronization beyond the channels.
//!
//! ```text
//! cargo run --release --example threaded_runtime
//! ```

use dtrack::core::hh::{HhConfig, HhCoordinator, HhSite};
use dtrack::prelude::*;
use dtrack::sim::threaded::ThreadedCluster;
use dtrack::workload::{Generator, Zipf};

fn main() {
    let k = 4;
    let epsilon = 0.05;
    let config = HhConfig::new(k, epsilon).expect("valid parameters");
    let sites: Vec<_> = (0..k).map(|_| HhSite::exact(config)).collect();
    let cluster = ThreadedCluster::spawn(sites, HhCoordinator::new(config)).expect("spawn threads");

    let mut gen = Zipf::new(1 << 16, 1.3, 21);
    let n = 200_000u64;
    for i in 0..n {
        cluster
            .feed(SiteId((i % k as u64) as u32), gen.next_item())
            .expect("feed");
        if i % 50_000 == 49_999 {
            // Wait for quiescence before querying coordinator state.
            cluster.settle();
            let (hh, words) = cluster
                .with_coordinator(move |c| c.heavy_hitters(0.1).expect("query"))
                .map(|hh| (hh, 0u64))
                .expect("coordinator alive");
            let words = words + cluster.cost().total_words();
            println!(
                "after {:>7} items: 0.1-heavy hitters {:?} ({} words so far)",
                i + 1,
                hh.iter().take(5).collect::<Vec<_>>(),
                words
            );
        }
    }
    cluster.settle();
    let (coordinator, sites, meter) = cluster.shutdown().expect("clean shutdown");
    println!(
        "\nfinal: C.m = {} (true {n}), {} tracked items, {} messages / {} words",
        coordinator.global_count(),
        coordinator.tracked_items(),
        meter.total_messages(),
        meter.total_words()
    );
    let per_site: Vec<u64> = sites.iter().map(|s| s.local_count()).collect();
    println!("per-site item counts: {per_site:?}");
    assert_eq!(per_site.iter().sum::<u64>(), n);
}
