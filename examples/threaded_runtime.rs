//! The same protocol state machines on real OS threads: one thread per
//! site, one for the coordinator, crossbeam channels in between — behind
//! the exact same `Tracker` facade as the deterministic runtime. The only
//! difference from `quickstart` is `.backend(BackendKind::Threaded)`.
//!
//! ```text
//! cargo run --release --example threaded_runtime
//! ```

use dtrack::prelude::*;
use dtrack::workload::{Generator, Zipf};

fn main() {
    let k = 4u32;
    let epsilon = 0.05;
    let config = HhConfig::new(k, epsilon).expect("valid parameters");
    let mut tracker = Tracker::builder()
        .backend(BackendKind::Threaded)
        .protocol(HhExactProtocol::new(config))
        .build()
        .expect("spawn threads");

    let mut gen = Zipf::new(1 << 16, 1.3, 21);
    let n = 200_000u64;
    for i in 0..n {
        tracker
            .feed(SiteId((i % k as u64) as u32), gen.next_item())
            .expect("feed");
        if i % 50_000 == 49_999 {
            // query() settles the cluster first, so the answer reflects a
            // quiescent snapshot — no manual synchronization needed.
            let hh = tracker
                .query(Query::HeavyHitters { phi: 0.1 })
                .expect("query");
            let words = tracker.cost().total_words();
            println!("after {:>7} items: {hh} ({words} words so far)", i + 1);
        }
    }

    let m = tracker
        .query(Query::Count)
        .expect("query")
        .as_count()
        .expect("count answer");
    let meter = tracker.finish().expect("clean shutdown");
    println!(
        "\nfinal: C.m = {} (true {}), {} messages / {} words",
        m,
        n,
        meter.total_messages(),
        meter.total_words()
    );
    assert!(m <= n, "tracked count must underestimate");
}
