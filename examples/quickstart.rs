//! Quickstart: track heavy hitters of a skewed stream observed by 4 sites.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dtrack::prelude::*;
use dtrack::workload::{RoundRobin, Zipf};

fn main() {
    // 4 sites, 2% approximation error. One tracker answers heavy-hitter
    // queries for every threshold φ >= ε.
    let k = 4;
    let epsilon = 0.02;
    let config = HhConfig::new(k, epsilon).expect("valid parameters");
    let mut cluster = dtrack::core::hh::exact_cluster(config).expect("cluster");

    // A Zipf(1.2) stream of one million items, observed round-robin.
    let mut gen = Zipf::new(1 << 20, 1.2, 42);
    let mut assign = RoundRobin::new(k);
    let n = 1_000_000u64;
    for _ in 0..n {
        cluster
            .feed(assign.next_site(), gen.next_item())
            .expect("feed");
    }

    // Query the continuously maintained answer — no extra communication.
    for phi in [0.05, 0.02] {
        let heavy = cluster.coordinator().heavy_hitters(phi).expect("query");
        println!("{}-heavy hitters ({} items):", phi, heavy.len());
        for x in heavy.iter().take(8) {
            let est = cluster.coordinator().frequency(*x);
            println!("  item {x:>8}  tracked frequency ~{est}");
        }
    }

    // The whole run cost O(k/ε · log n) words — compare with the naive
    // 2n words of forwarding everything.
    let words = cluster.meter().total_words();
    println!("\nstream length        : {n}");
    println!("communication        : {words} words");
    println!("naive forwarding     : {} words", 2 * n);
    println!(
        "savings              : {:.0}x",
        2.0 * n as f64 / words as f64
    );
    println!("\nper message kind:\n{}", cluster.meter().report());
}
