//! Quickstart: track heavy hitters of a skewed stream observed by 4 sites
//! through the `Tracker` facade.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dtrack::prelude::*;
use dtrack::workload::{RoundRobin, Zipf};

fn main() {
    // 4 sites, 2% approximation error. One tracker answers heavy-hitter
    // queries for every threshold φ >= ε. The config embeds k, so the
    // builder needs no separate `.sites(k)` call.
    let k = 4;
    let epsilon = 0.02;
    let config = HhConfig::new(k, epsilon).expect("valid parameters");
    let mut tracker = Tracker::builder()
        .protocol(HhExactProtocol::new(config))
        .build()
        .expect("tracker");

    // A Zipf(1.2) stream of one million items, observed round-robin,
    // delivered in batches (transcript-identical to per-item feeding,
    // just faster).
    let mut gen = Zipf::new(1 << 20, 1.2, 42);
    let mut assign = RoundRobin::new(k);
    let n = 1_000_000u64;
    let mut batch = Vec::with_capacity(4096);
    for _ in 0..n {
        batch.push((assign.next_site(), gen.next_item()));
        if batch.len() == batch.capacity() {
            tracker.feed_batch(&batch).expect("feed");
            batch.clear();
        }
    }
    tracker.feed_batch(&batch).expect("feed");

    // Query the continuously maintained answer — no extra communication.
    for phi in [0.05, 0.02] {
        let answer = tracker.query(Query::HeavyHitters { phi }).expect("query");
        let heavy = answer.as_items().expect("heavy-hitter answer").to_vec();
        println!("{}-heavy hitters ({} items):", phi, heavy.len());
        for x in heavy.iter().take(8) {
            let est = tracker
                .query(Query::Frequency { x: *x })
                .expect("query")
                .as_count()
                .expect("frequency answer");
            println!("  item {x:>8}  tracked frequency ~{est}");
        }
    }

    // The whole run cost O(k/ε · log n) words — compare with the naive
    // 2n words of forwarding everything.
    let meter = tracker.finish().expect("clean teardown");
    let words = meter.total_words();
    println!("\nstream length        : {n}");
    println!("communication        : {words} words");
    println!("naive forwarding     : {} words", 2 * n);
    println!(
        "savings              : {:.0}x",
        2.0 * n as f64 / words as f64
    );
    println!("\nper message kind:\n{}", meter.report());
}
