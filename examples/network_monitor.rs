//! Network monitoring: k ingress routers continuously report heavy-hitter
//! flows to a central collector, surviving a traffic-shift "attack".
//!
//! This is the paper's motivating application class (network anomaly
//! detection / distributed triggers): the collector must know, at all
//! times, which flows exceed a fraction φ of total traffic, while the
//! routers keep only O(1/ε) state (SpaceSaving sketch sites) and the
//! control traffic stays logarithmic in the packet count.
//!
//! ```text
//! cargo run --release --example network_monitor
//! ```

use dtrack::prelude::*;
use dtrack::workload::{ShiftingZipf, SkewedSites};

fn main() {
    let k = 8; // ingress routers
    let epsilon = 0.02;
    let phi = 0.05; // alert on flows above 5% of traffic
    let config = HhConfig::new(k, epsilon).expect("valid parameters");
    // Sketch-backed sites: O(1/ε) counters per router.
    let mut tracker = Tracker::builder()
        .protocol(HhSketchedProtocol::new(config))
        .build()
        .expect("tracker");
    let mut oracle = ExactOracle::new();

    // Flow ids are Zipf-distributed; the hot set rotates every 200k
    // packets (the "attack" changes its source). Routers see skewed
    // shares of traffic.
    let mut flows = ShiftingZipf::new(1 << 24, 1.3, 200_000, 7);
    let mut routers = SkewedSites::new(k, 1.2, 9);

    let n = 1_000_000u64;
    let report_every = 200_000u64;
    println!(
        "{:>9}  {:>8}  {:>22}  alerts",
        "packets", "words", "top flow (true share)"
    );
    for i in 1..=n {
        let flow = flows.next_item();
        oracle.observe(flow);
        tracker.feed(routers.next_site(), flow).expect("feed");
        if i % report_every == 0 {
            let alerts = tracker
                .query(Query::HeavyHitters { phi })
                .expect("query")
                .as_items()
                .expect("heavy-hitter answer")
                .to_vec();
            let top = oracle
                .heavy_hitters(phi)
                .first()
                .copied()
                .map(|f| {
                    format!(
                        "{f} ({:.1}%)",
                        100.0 * oracle.frequency(f) as f64 / oracle.total() as f64
                    )
                })
                .unwrap_or_else(|| "-".to_owned());
            println!(
                "{:>9}  {:>8}  {:>22}  {:?}",
                i,
                tracker.cost().total_words(),
                top,
                alerts.iter().take(4).collect::<Vec<_>>()
            );
            // The tracked answer is always ε-correct.
            if let Some(v) = oracle.check_heavy_hitters(&alerts, phi, 2.0 * epsilon) {
                println!("  !! unexpected violation: {v}");
            }
        }
    }
    // Per-router memory stayed at O(1/ε) counters by construction
    // (SpaceSaving sites) regardless of how many distinct flows passed.
    let meter = tracker.finish().expect("clean teardown");
    println!(
        "\n{} distinct flows seen; control traffic {} words total:\n{}",
        oracle.heavy_hitters(0.0).len(),
        meter.total_words(),
        meter.report()
    );
}
