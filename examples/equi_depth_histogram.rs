//! Equi-depth histogram: the §4 all-quantiles structure *is* an
//! approximate equal-height histogram of the distributed stream — the
//! paper: "such a structure is equivalent to an (approximate) equal-height
//! histogram, which characterizes the entire distribution."
//!
//! We track a Zipf stream across 6 sites and render the coordinator's
//! histogram, query arbitrary quantiles and ranks, and extract the
//! 2ε-heavy hitters — all with zero extra communication at query time.
//!
//! ```text
//! cargo run --release --example equi_depth_histogram
//! ```

use dtrack::core::allq::{exact_cluster, AllQConfig};
use dtrack::workload::{Assignment, Generator, RoundRobin, Zipf};

fn main() {
    let k = 6;
    let epsilon = 0.05;
    let config = AllQConfig::new(k, epsilon).expect("valid parameters");
    let mut cluster = exact_cluster(config).expect("cluster");

    let mut gen = Zipf::new(1 << 20, 1.15, 77);
    let mut assign = RoundRobin::new(k);
    let n = 800_000u64;
    for _ in 0..n {
        cluster
            .feed(assign.next_site(), gen.next_item())
            .expect("feed");
    }
    let coord = cluster.coordinator();

    // 1. The histogram: deciles of the tracked distribution.
    println!("decile histogram (each bucket holds ~10% of items):");
    let mut prev = 0u64;
    for d in 1..=10 {
        let q = coord
            .quantile(d as f64 / 10.0)
            .expect("valid phi")
            .expect("nonempty");
        println!("  bucket {d:>2}: [{prev:>8}, {q:>8})");
        prev = q;
    }

    // 2. Arbitrary rank queries.
    println!("\nrank queries:");
    for probe in [1u64 << 10, 1 << 15, 1 << 19] {
        let r = coord.rank_lt(probe);
        println!(
            "  rank({probe:>8}) ~ {r:>8}  ({:.1}% of the stream)",
            100.0 * r as f64 / coord.n_estimate() as f64
        );
    }

    // 3. Heavy hitters fall out of the same structure (the paper's [7]
    //    observation), at doubled error.
    let hh = coord.heavy_hitters(0.05).expect("valid phi");
    println!("\n0.05-heavy hitters from the histogram: {hh:?}");

    // 4. Structure introspection (Figure 1).
    let tree = coord.tree();
    println!(
        "\ntree: {} live leaves, height {} (bound {}), total communication {} words",
        tree.leaves().len(),
        tree.height(),
        config.height_bound(),
        cluster.meter().total_words()
    );
}
