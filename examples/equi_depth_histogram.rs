//! Equi-depth histogram: the §4 all-quantiles structure *is* an
//! approximate equal-height histogram of the distributed stream — the
//! paper: "such a structure is equivalent to an (approximate) equal-height
//! histogram, which characterizes the entire distribution."
//!
//! We track a Zipf stream across 6 sites and render the coordinator's
//! histogram, query arbitrary quantiles and ranks, and extract the
//! 2ε-heavy hitters — all through typed `Tracker` queries, with zero
//! extra communication at query time. (For structural introspection of
//! the tree itself, drop below the facade to `allq::exact_cluster`.)
//!
//! ```text
//! cargo run --release --example equi_depth_histogram
//! ```

use dtrack::prelude::*;
use dtrack::workload::{RoundRobin, Zipf};

fn main() {
    let k = 6;
    let epsilon = 0.05;
    let config = AllQConfig::new(k, epsilon).expect("valid parameters");
    let mut tracker = Tracker::builder()
        .protocol(AllQExactProtocol::new(config))
        .build()
        .expect("tracker");

    let mut gen = Zipf::new(1 << 20, 1.15, 77);
    let mut assign = RoundRobin::new(k);
    let n = 800_000u64;
    let mut batch = Vec::with_capacity(4096);
    for _ in 0..n {
        batch.push((assign.next_site(), gen.next_item()));
        if batch.len() == batch.capacity() {
            tracker.feed_batch(&batch).expect("feed");
            batch.clear();
        }
    }
    tracker.feed_batch(&batch).expect("feed");

    // 1. The histogram: deciles of the tracked distribution.
    println!("decile histogram (each bucket holds ~10% of items):");
    let mut prev = 0u64;
    for d in 1..=10 {
        let q = tracker
            .query(Query::Quantile {
                phi: d as f64 / 10.0,
            })
            .expect("valid phi")
            .as_quantile()
            .expect("quantile answer")
            .expect("nonempty");
        println!("  bucket {d:>2}: [{prev:>8}, {q:>8})");
        prev = q;
    }

    // 2. Arbitrary rank queries.
    let n_est = tracker
        .query(Query::Count)
        .expect("query")
        .as_count()
        .expect("count answer");
    println!("\nrank queries:");
    for probe in [1u64 << 10, 1 << 15, 1 << 19] {
        let r = tracker
            .query(Query::RankLt { x: probe })
            .expect("query")
            .as_count()
            .expect("rank answer");
        println!(
            "  rank({probe:>8}) ~ {r:>8}  ({:.1}% of the stream)",
            100.0 * r as f64 / n_est as f64
        );
    }

    // 3. Heavy hitters fall out of the same structure (the paper's [7]
    //    observation), at doubled error.
    let hh = tracker
        .query(Query::HeavyHitters { phi: 0.05 })
        .expect("valid phi");
    println!("\n0.05-heavy hitters from the histogram: {hh}");

    let meter = tracker.finish().expect("clean teardown");
    println!(
        "\ntracked n ~ {n_est} (true {n}), total communication {} words",
        meter.total_words()
    );
}
