//! The §5 extensions together: sliding-window heavy hitters and window
//! quantiles over a stream whose distribution rotates, plus the
//! randomized sampling tracker for comparison — three `Tracker`s over the
//! same simulated stream.
//!
//! ```text
//! cargo run --release --example sliding_window
//! ```

use dtrack::core::sampling::{SamplingConfig, SamplingProtocol};
use dtrack::core::window::{
    WindowHhConfig, WindowHhProtocol, WindowOracle, WindowQuantileProtocol,
};
use dtrack::prelude::*;
use dtrack::workload::{Generator, ShiftingZipf};

fn heavy(t: &mut Tracker, phi: f64) -> Vec<u64> {
    t.query(Query::HeavyHitters { phi })
        .expect("query")
        .as_items()
        .expect("heavy-hitter answer")
        .to_vec()
}

fn main() {
    let k = 6;
    let epsilon = 0.05;
    let w = 50_000u64; // window: the last 50k events
    let phi = 0.1;

    let config = WindowHhConfig::new(k, epsilon, w).expect("valid parameters");
    let samp_cfg = SamplingConfig::new(k, epsilon, 0.05, 99).expect("valid parameters");
    let mut hh = Tracker::builder()
        .protocol(WindowHhProtocol::new(config))
        .build()
        .expect("tracker");
    let mut med = Tracker::builder()
        .protocol(WindowQuantileProtocol::new(config))
        .build()
        .expect("tracker");
    let mut whole_stream = Tracker::builder()
        .protocol(SamplingProtocol::new(samp_cfg))
        .build()
        .expect("tracker");
    let mut oracle = WindowOracle::new(w);

    // The hot item rotates every half-window: the *window* heavy hitters
    // change completely while the *whole-stream* heavy hitters blur.
    let mut gen = ShiftingZipf::new(1 << 24, 1.4, w / 2, 17);
    let n = 500_000u64;
    println!(
        "{:>9}  {:>14}  {:>14}  {:>12}",
        "events", "window HHs", "window median", "total words"
    );
    for i in 1..=n {
        let x = gen.next_item();
        let s = SiteId((i % k as u64) as u32);
        oracle.observe(x);
        hh.feed(s, x).expect("feed");
        med.feed(s, x).expect("feed");
        whole_stream.feed(s, x).expect("feed");
        if i % 100_000 == 0 {
            let window_hh = heavy(&mut hh, phi);
            let median = med
                .query(Query::Quantile { phi: 0.5 })
                .expect("valid phi")
                .as_quantile()
                .expect("quantile answer")
                .unwrap_or(0);
            println!(
                "{:>9}  {:>14}  {:>14}  {:>12}",
                i,
                format!("{:?}", window_hh.iter().take(2).collect::<Vec<_>>()),
                median,
                hh.cost().total_words() + med.cost().total_words(),
            );
            if let Some(v) = oracle.check(&window_hh, phi, 2.0 * epsilon) {
                println!("  !! window guarantee violated: {v}");
            }
        }
    }

    // Contrast: over the whole stream, no single rotating item stays
    // heavy; over the window, the current hot item always is.
    let whole_hh = heavy(&mut whole_stream, phi);
    let window_hh = heavy(&mut hh, phi);
    println!("\nwhole-stream 0.1-heavy hitters (sampled): {whole_hh:?}");
    println!("window 0.1-heavy hitters               : {window_hh:?}");
    println!(
        "exact window check                      : {:?}",
        oracle.heavy_hitters(phi)
    );
}
